//! An incrementally maintained subspace basis — the per-node state of every
//! coding node.
//!
//! A node's knowledge in the paper is exactly "the subspace spanned by the
//! received vectors" (Section 5.1; this is what makes the algorithm
//! *knowledge-based*). [`Subspace`] keeps that span as a reduced
//! row-echelon basis so that
//!
//! * inserting a received vector is O(dim · len) and reports whether the
//!   vector was **innovative** (a "learning event" in the language of the
//!   Theorem 6.1 witness argument — the dimension grew);
//! * membership tests, random combinations, sensing tests (Definition 5.1)
//!   and prefix decoding are all cheap.

use crate::field::Field;
use crate::vector;
use rand::Rng;

/// A subspace of F^len maintained as a basis in reduced row-echelon form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Subspace<F: Field> {
    /// Basis rows, sorted by strictly increasing pivot index; each pivot is
    /// 1 and its column is zero in every other row.
    rows: Vec<Vec<F>>,
    /// `pivots[i]` is the pivot column of `rows[i]`.
    pivots: Vec<usize>,
    len: usize,
}

impl<F: Field> Subspace<F> {
    /// The zero subspace of F^len.
    pub fn new(len: usize) -> Self {
        Subspace {
            rows: Vec::new(),
            pivots: Vec::new(),
            len,
        }
    }

    /// Ambient dimension (vector length).
    pub fn ambient_len(&self) -> usize {
        self.len
    }

    /// The dimension of the subspace.
    pub fn dim(&self) -> usize {
        self.rows.len()
    }

    /// The basis rows (in RREF, pivots strictly increasing).
    pub fn basis(&self) -> &[Vec<F>] {
        &self.rows
    }

    /// The pivot columns of the basis rows.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// Reduces `v` against the basis in place; afterwards `v` is zero iff it
    /// was in the span.
    fn reduce(&self, v: &mut [F]) {
        for (row, &p) in self.rows.iter().zip(&self.pivots) {
            let c = v[p];
            if !c.is_zero() {
                vector::scale_add(v, row, c.neg());
            }
        }
    }

    /// Inserts a vector; returns `true` iff it was innovative (the
    /// dimension increased).
    ///
    /// # Panics
    /// Panics if `v.len()` differs from the ambient length.
    pub fn insert(&mut self, mut v: Vec<F>) -> bool {
        assert_eq!(v.len(), self.len, "vector length mismatch");
        self.reduce(&mut v);
        let Some(p) = vector::leading_index(&v) else {
            return false;
        };
        // Normalize the new pivot to 1.
        let inv = v[p].inv().expect("leading entry nonzero");
        vector::scale(&mut v, inv);
        // Back-eliminate the new pivot column from existing rows.
        for row in &mut self.rows {
            let c = row[p];
            if !c.is_zero() {
                vector::scale_add(row, &v, c.neg());
            }
        }
        // Insert keeping pivots sorted.
        let idx = self.pivots.partition_point(|&q| q < p);
        self.rows.insert(idx, v);
        self.pivots.insert(idx, p);
        true
    }

    /// Does the span contain `v`?
    pub fn contains(&self, v: &[F]) -> bool {
        assert_eq!(v.len(), self.len, "vector length mismatch");
        let mut w = v.to_vec();
        self.reduce(&mut w);
        vector::is_zero(&w)
    }

    /// A uniformly random vector of the subspace (random coefficients over
    /// the basis) — the message a coding node emits. `None` if the subspace
    /// is zero-dimensional.
    pub fn random_combination<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Vec<F>> {
        vector::random_combination(&self.rows, self.len, rng)
    }

    /// Does the node **sense** μ (Definition 5.1): has it received a vector
    /// whose first `mu.len()` coordinates are not orthogonal to `mu`?
    ///
    /// Equivalently (and how we compute it): some basis row's prefix has a
    /// nonzero inner product with `mu`.
    pub fn senses(&self, mu: &[F]) -> bool {
        self.rows
            .iter()
            .any(|row| !vector::dot(&row[..mu.len()], mu).is_zero())
    }

    /// Rank of the projection onto the first `k` coordinates.
    pub fn prefix_rank(&self, k: usize) -> usize {
        self.pivots.iter().take_while(|&&p| p < k).count()
    }

    /// Attempts to decode `k` indexed payloads from vectors of the form
    /// `[coefficients (k) | payload]`.
    ///
    /// Returns `Some(payloads)` — payload `i` corresponding to unit
    /// coefficient vector e_i — iff the coefficient prefix has full rank
    /// `k`. In RREF full prefix rank means the first `k` rows restricted to
    /// the first `k` columns form the identity, so row `i`'s suffix *is*
    /// payload `i`.
    pub fn decode(&self, k: usize) -> Option<Vec<Vec<F>>> {
        if self.prefix_rank(k) < k {
            return None;
        }
        Some(self.rows[..k].iter().map(|r| r[k..].to_vec()).collect())
    }

    /// Decodes the payloads that are *individually* available: entry `i` is
    /// `Some(payload_i)` iff some vector with coefficient part exactly e_i
    /// lies in the span. With the RREF invariant this holds iff row `j`
    /// with pivot `i` has all other first-`k` coordinates zero.
    pub fn decode_available(&self, k: usize) -> Vec<Option<Vec<F>>> {
        let mut out = vec![None; k];
        for (row, &p) in self.rows.iter().zip(&self.pivots) {
            if p < k
                && row[..k]
                    .iter()
                    .enumerate()
                    .all(|(j, c)| j == p || c.is_zero())
            {
                out[p] = Some(row[k..].to_vec());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf256, Gf257};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn insert_reports_innovation_correctly() {
        let mut s: Subspace<Gf257> = Subspace::new(3);
        assert!(s.insert(vec![Gf257::new(1), Gf257::new(2), Gf257::new(3)]));
        assert!(!s.insert(vec![Gf257::new(2), Gf257::new(4), Gf257::new(6)]));
        assert!(s.insert(vec![Gf257::new(0), Gf257::new(1), Gf257::new(0)]));
        assert_eq!(s.dim(), 2);
        assert!(!s.insert(vec![Gf257::new(1), Gf257::new(5), Gf257::new(3)]));
    }

    #[test]
    fn zero_vector_is_never_innovative() {
        let mut s: Subspace<Gf256> = Subspace::new(4);
        assert!(!s.insert(vec![Gf256::ZERO; 4]));
        assert_eq!(s.dim(), 0);
    }

    #[test]
    fn rref_invariant_maintained() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut s: Subspace<Gf256> = Subspace::new(12);
        for _ in 0..20 {
            s.insert(vector::random_vec(12, &mut rng));
        }
        // Pivots strictly increasing, pivot entries 1, pivot columns cleared.
        assert!(s.pivots().windows(2).all(|w| w[0] < w[1]));
        for (i, (&p, row)) in s.pivots().iter().zip(s.basis()).enumerate() {
            assert_eq!(row[p], Gf256::ONE);
            for (j, other) in s.basis().iter().enumerate() {
                if i != j {
                    assert!(other[p].is_zero());
                }
            }
            // Entries left of the pivot are zero.
            assert!(row[..p].iter().all(|c| c.is_zero()));
        }
    }

    #[test]
    fn contains_matches_membership() {
        let mut rng = StdRng::seed_from_u64(78);
        let mut s: Subspace<Gf257> = Subspace::new(6);
        let gens: Vec<Vec<Gf257>> = (0..3).map(|_| vector::random_vec(6, &mut rng)).collect();
        for g in &gens {
            s.insert(g.clone());
        }
        // Combinations of generators are members.
        for _ in 0..20 {
            let c = vector::random_combination(&gens, 6, &mut rng).unwrap();
            assert!(s.contains(&c));
        }
        // A random vector of F^6 is almost surely not in a 3-dim subspace.
        let mut hits = 0;
        for _ in 0..50 {
            if s.contains(&vector::random_vec::<Gf257, _>(6, &mut rng)) {
                hits += 1;
            }
        }
        assert!(
            hits <= 2,
            "3-dim subspace of F_257^6 contains ~2^-24 of space"
        );
    }

    #[test]
    fn decode_recovers_indexed_tokens() {
        let mut rng = StdRng::seed_from_u64(79);
        let k = 5;
        let d = 4;
        let payloads: Vec<Vec<Gf256>> = (0..k).map(|_| vector::random_vec(d, &mut rng)).collect();
        let sources: Vec<Vec<Gf256>> = (0..k)
            .map(|i| {
                let mut v = vector::unit_vec::<Gf256>(k + d, i);
                v[k..].copy_from_slice(&payloads[i]);
                v
            })
            .collect();
        // Feed random combinations (as a relay would) until decodable.
        let mut s: Subspace<Gf256> = Subspace::new(k + d);
        assert_eq!(s.decode(k), None);
        for _ in 0..50 {
            let c = vector::random_combination(&sources, k + d, &mut rng).unwrap();
            s.insert(c);
            if s.dim() == k {
                break;
            }
        }
        assert_eq!(s.decode(k), Some(payloads));
    }

    #[test]
    fn decode_available_is_partial() {
        let k = 3;
        let d = 2;
        let mut s: Subspace<Gf257> = Subspace::new(k + d);
        // Only token 1 present.
        let mut v = vector::unit_vec::<Gf257>(k + d, 1);
        v[k] = Gf257::new(9);
        v[k + 1] = Gf257::new(8);
        s.insert(v);
        let avail = s.decode_available(k);
        assert_eq!(avail[0], None);
        assert_eq!(avail[1], Some(vec![Gf257::new(9), Gf257::new(8)]));
        assert_eq!(avail[2], None);
        assert_eq!(s.decode(k), None);
    }

    #[test]
    fn sensing_definition_5_1() {
        let k = 4;
        let mut s: Subspace<Gf257> = Subspace::new(k + 1);
        // Received vector with coefficient part (1, 1, 0, 0).
        s.insert(vec![
            Gf257::new(1),
            Gf257::new(1),
            Gf257::new(0),
            Gf257::new(0),
            Gf257::new(7),
        ]);
        // mu = e_0 has dot 1 with the prefix: sensed.
        assert!(s.senses(&vector::unit_vec::<Gf257>(k, 0)));
        // mu = (1, 256, 0, 0) has dot 1 + 256 = 0 mod 257: not sensed.
        assert!(!s.senses(&[Gf257::new(1), Gf257::new(256), Gf257::new(0), Gf257::new(0)]));
        // mu = e_2: prefix orthogonal, not sensed.
        assert!(!s.senses(&vector::unit_vec::<Gf257>(k, 2)));
    }

    #[test]
    fn prefix_rank_counts_low_pivots() {
        let mut s: Subspace<Gf257> = Subspace::new(5);
        s.insert(vector::unit_vec::<Gf257>(5, 0));
        s.insert(vector::unit_vec::<Gf257>(5, 4));
        assert_eq!(s.prefix_rank(3), 1);
        assert_eq!(s.prefix_rank(5), 2);
    }

    #[test]
    fn random_combination_stays_in_span_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(80);
        let mut s: Subspace<Gf256> = Subspace::new(8);
        for _ in 0..3 {
            s.insert(vector::random_vec(8, &mut rng));
        }
        for _ in 0..30 {
            let c = s.random_combination(&mut rng).unwrap();
            assert!(s.contains(&c));
        }
        let empty: Subspace<Gf256> = Subspace::new(8);
        assert!(empty.random_combination(&mut rng).is_none());
    }
}
