//! Prime fields GF(p) for odd primes, via a const-generic modulus.
//!
//! The derandomization results (Section 6) need field sizes far beyond
//! GF(2^8): Theorem 6.1 picks q = n^Ω(k) so that a union bound over all
//! compact adversarial "witnesses" goes through. No machine can represent
//! n^Ω(k)-sized fields, but the *operational* content — an omniscient
//! adversary cannot make random combinations collapse when 1/q is tiny — is
//! exercised faithfully by [`Mersenne61`] (q = 2^61 − 1), whose 2^-61
//! per-hop failure probability is far below anything an experiment at
//! simulatable scales can exploit. Small primes ([`Gf257`], [`Gf65537`])
//! cover the intermediate regime of the field-size experiments (E9/E11).

use crate::field::Field;
use rand::{Rng, RngExt};

/// An element of GF(P) for a prime `P < 2^63`. The value is kept reduced in
/// `0..P`.
///
/// `P` must be prime; [`GfP::order`] and inversion rely on Fermat's little
/// theorem. Debug builds assert primality once per process for small `P`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct GfP<const P: u64>(u64);

/// GF(257): the smallest prime field able to index a byte plus one.
pub type Gf257 = GfP<257>;
/// GF(65537): the Fermat-prime field F_4.
pub type Gf65537 = GfP<65537>;
/// GF(2^61 − 1): the Mersenne-prime field standing in for the paper's
/// "large q" derandomization regime.
pub type Mersenne61 = GfP<2_305_843_009_213_693_951>;

impl<const P: u64> GfP<P> {
    /// Builds an element from an already-reduced representative.
    ///
    /// # Panics
    /// Panics if `value >= P`.
    pub fn new(value: u64) -> Self {
        assert!(value < P, "representative {value} out of range for GF({P})");
        GfP(value)
    }

    /// The canonical representative.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl<const P: u64> core::fmt::Debug for GfP<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<const P: u64> Field for GfP<P> {
    const ZERO: Self = GfP(0);
    const ONE: Self = GfP(1);

    fn order() -> u128 {
        P as u128
    }

    fn add(self, rhs: Self) -> Self {
        let s = self.0 + rhs.0; // P < 2^63 so this cannot overflow u64
        GfP(if s >= P { s - P } else { s })
    }

    fn sub(self, rhs: Self) -> Self {
        GfP(if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + P - rhs.0
        })
    }

    fn mul(self, rhs: Self) -> Self {
        GfP(((self.0 as u128 * rhs.0 as u128) % P as u128) as u64)
    }

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(P - 2))
        }
    }

    fn from_u64(x: u64) -> Self {
        GfP(x % P)
    }

    fn to_u64(self) -> u64 {
        self.0
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        GfP(rng.random_range(0..P))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn small_prime_arithmetic_exhaustive() {
        type F5 = GfP<5>;
        for a in 0..5u64 {
            for b in 0..5u64 {
                assert_eq!(F5::from_u64(a).add(F5::from_u64(b)).value(), (a + b) % 5);
                assert_eq!(F5::from_u64(a).mul(F5::from_u64(b)).value(), (a * b) % 5);
                assert_eq!(
                    F5::from_u64(a).sub(F5::from_u64(b)).value(),
                    (a + 5 - b) % 5
                );
            }
        }
    }

    #[test]
    fn mersenne61_inverse_round_trips() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..100 {
            let a = Mersenne61::random_nonzero(&mut rng);
            assert_eq!(a.mul(a.inv().unwrap()), Mersenne61::ONE);
        }
    }

    #[test]
    fn mersenne61_no_overflow_near_modulus() {
        let p = 2_305_843_009_213_693_951u64;
        let a = Mersenne61::new(p - 1);
        assert_eq!(a.add(a).value(), p - 2);
        // (p-1)^2 mod p = 1
        assert_eq!(a.mul(a), Mersenne61::ONE);
        assert_eq!(a.sub(Mersenne61::new(0)), a);
        assert_eq!(Mersenne61::new(0).sub(a).value(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Gf257::new(257);
    }

    #[test]
    fn random_is_in_range_and_varied() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let x = Gf257::random(&mut rng);
            assert!(x.value() < 257);
            seen.insert(x.value());
        }
        assert!(seen.len() > 100, "random sampling looks degenerate");
    }
}
