//! Prime fields GF(p) for odd primes, via a const-generic modulus.
//!
//! The derandomization results (Section 6) need field sizes far beyond
//! GF(2^8): Theorem 6.1 picks q = n^Ω(k) so that a union bound over all
//! compact adversarial "witnesses" goes through. No machine can represent
//! n^Ω(k)-sized fields, but the *operational* content — an omniscient
//! adversary cannot make random combinations collapse when 1/q is tiny — is
//! exercised faithfully by [`Mersenne61`] (q = 2^61 − 1), whose 2^-61
//! per-hop failure probability is far below anything an experiment at
//! simulatable scales can exploit. Small primes ([`Gf257`], [`Gf65537`])
//! cover the intermediate regime of the field-size experiments (E9/E11).

use crate::field::Field;
use rand::{Rng, RngExt};

/// An element of GF(P) for a prime `P < 2^63`. The value is kept reduced in
/// `0..P`.
///
/// `P` must be prime; [`GfP::order`] and inversion rely on Fermat's little
/// theorem. Debug builds assert primality once per process for small `P`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct GfP<const P: u64>(u64);

/// GF(257): the smallest prime field able to index a byte plus one.
pub type Gf257 = GfP<257>;
/// GF(65537): the Fermat-prime field F_4.
pub type Gf65537 = GfP<65537>;
/// GF(2^61 − 1): the Mersenne-prime field standing in for the paper's
/// "large q" derandomization regime.
pub type Mersenne61 = GfP<2_305_843_009_213_693_951>;

/// The Mersenne-61 modulus, named so `mul` can branch on it per-instance.
const MERSENNE61_P: u64 = 2_305_843_009_213_693_951;

impl<const P: u64> GfP<P> {
    /// Builds an element from an already-reduced representative.
    ///
    /// # Panics
    /// Panics if `value >= P`.
    pub fn new(value: u64) -> Self {
        assert!(value < P, "representative {value} out of range for GF({P})");
        GfP(value)
    }

    /// The canonical representative.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl<const P: u64> core::fmt::Debug for GfP<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<const P: u64> Field for GfP<P> {
    const ZERO: Self = GfP(0);
    const ONE: Self = GfP(1);

    fn order() -> u128 {
        P as u128
    }

    fn add(self, rhs: Self) -> Self {
        let s = self.0 + rhs.0; // P < 2^63 so this cannot overflow u64
        GfP(if s >= P { s - P } else { s })
    }

    fn sub(self, rhs: Self) -> Self {
        GfP(if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + P - rhs.0
        })
    }

    fn mul(self, rhs: Self) -> Self {
        // Branching on the const modulus lets each instantiation keep only
        // its own reduction path after constant folding. A generic `u128 %`
        // compiles to a full 128-bit division on the row-operation hot
        // path; both special moduli admit division-free reductions.
        if P == MERSENNE61_P {
            // Mersenne reduction: 2^61 ≡ 1 (mod p), so fold the high bits
            // down twice (the first fold leaves a value < 2^62) and finish
            // with one conditional subtract.
            let wide = self.0 as u128 * rhs.0 as u128;
            let folded = (wide & MERSENNE61_P as u128) as u64 + (wide >> 61) as u64;
            let folded = (folded & MERSENNE61_P) + (folded >> 61);
            GfP(if folded >= P { folded - P } else { folded })
        } else if P == 257 {
            // 2^8 ≡ −1 (mod 257): for a product x ≤ 256², the byte split
            // x = hi·2^8 + lo reduces to lo − hi, lifted into 0..257 by
            // adding 257 and one conditional subtract.
            let x = self.0 * rhs.0;
            let r = (x & 0xff) + 257 - (x >> 8);
            GfP(if r >= 257 { r - 257 } else { r })
        } else {
            GfP(((self.0 as u128 * rhs.0 as u128) % P as u128) as u64)
        }
    }

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(P - 2))
        }
    }

    fn from_u64(x: u64) -> Self {
        // Already-reduced values (the common case: unpacking symbols that
        // were packed from canonical representatives) skip the division.
        GfP(if x < P { x } else { x % P })
    }

    fn to_u64(self) -> u64 {
        self.0
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        GfP(rng.random_range(0..P))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn small_prime_arithmetic_exhaustive() {
        type F5 = GfP<5>;
        for a in 0..5u64 {
            for b in 0..5u64 {
                assert_eq!(F5::from_u64(a).add(F5::from_u64(b)).value(), (a + b) % 5);
                assert_eq!(F5::from_u64(a).mul(F5::from_u64(b)).value(), (a * b) % 5);
                assert_eq!(
                    F5::from_u64(a).sub(F5::from_u64(b)).value(),
                    (a + 5 - b) % 5
                );
            }
        }
    }

    #[test]
    fn mersenne61_inverse_round_trips() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..100 {
            let a = Mersenne61::random_nonzero(&mut rng);
            assert_eq!(a.mul(a.inv().unwrap()), Mersenne61::ONE);
        }
    }

    #[test]
    fn mersenne61_no_overflow_near_modulus() {
        let p = 2_305_843_009_213_693_951u64;
        let a = Mersenne61::new(p - 1);
        assert_eq!(a.add(a).value(), p - 2);
        // (p-1)^2 mod p = 1
        assert_eq!(a.mul(a), Mersenne61::ONE);
        assert_eq!(a.sub(Mersenne61::new(0)), a);
        assert_eq!(Mersenne61::new(0).sub(a).value(), 1);
    }

    #[test]
    fn gf257_fast_reduction_matches_generic_modulo_exhaustively() {
        // The byte-split path is locked against the old `%` implementation
        // over the entire 257 × 257 multiplication table.
        for a in 0..257u64 {
            for b in 0..257u64 {
                assert_eq!(
                    Gf257::new(a).mul(Gf257::new(b)).value(),
                    (a * b) % 257,
                    "{a} * {b} mod 257"
                );
            }
        }
    }

    #[test]
    fn mersenne61_fast_reduction_matches_generic_modulo_at_edges() {
        let p = 2_305_843_009_213_693_951u64;
        // Boundary representatives where the shift-add folds are tightest.
        let edges = [0, 1, 2, (1 << 31) - 1, 1 << 31, p / 2, p - 2, p - 1];
        for &a in &edges {
            for &b in &edges {
                assert_eq!(
                    Mersenne61::new(a).mul(Mersenne61::new(b)).value(),
                    ((a as u128 * b as u128) % p as u128) as u64,
                    "{a} * {b} mod 2^61-1"
                );
            }
        }
    }

    proptest::proptest! {
        /// Randomized lock of the Mersenne shift-add reduction against the
        /// old generic `u128 %` implementation.
        #[test]
        fn mersenne61_fast_reduction_matches_generic_modulo(
            a in 0u64..2_305_843_009_213_693_951,
            b in 0u64..2_305_843_009_213_693_951,
        ) {
            let p = 2_305_843_009_213_693_951u64;
            proptest::prop_assert_eq!(
                Mersenne61::new(a).mul(Mersenne61::new(b)).value(),
                ((a as u128 * b as u128) % p as u128) as u64
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Gf257::new(257);
    }

    #[test]
    fn random_is_in_range_and_varied() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let x = Gf257::random(&mut rng);
            assert!(x.value() < 257);
            seen.insert(x.value());
        }
        assert!(seen.len() > 100, "random sampling looks degenerate");
    }
}
