//! Dense matrices over any [`Field`] with reduced row-echelon form, rank,
//! and linear solving — the "Gaussian elimination" the paper's decoding
//! step uses (Section 5.1: "it can use Gaussian elimination to reconstruct
//! the v_i, and thus the original tokens").

use crate::field::Field;
use crate::vector;
use rand::Rng;

/// A dense row-major matrix over `F`.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix<F: Field> {
    rows: Vec<Vec<F>>,
    ncols: usize,
}

impl<F: Field> core::fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.nrows(), self.ncols)?;
        for r in &self.rows {
            writeln!(f, "  {r:?}")?;
        }
        write!(f, "]")
    }
}

impl<F: Field> Matrix<F> {
    /// An empty matrix with the given number of columns.
    pub fn new(ncols: usize) -> Self {
        Matrix {
            rows: Vec::new(),
            ncols,
        }
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<F>>) -> Self {
        let ncols = rows.first().map_or(0, Vec::len);
        for r in &rows {
            assert_eq!(r.len(), ncols, "ragged rows");
        }
        Matrix { rows, ncols }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_rows((0..n).map(|i| vector::unit_vec(n, i)).collect())
    }

    /// A uniformly random matrix.
    pub fn random<R: Rng + ?Sized>(nrows: usize, ncols: usize, rng: &mut R) -> Self {
        Matrix {
            rows: (0..nrows).map(|_| vector::random_vec(ncols, rng)).collect(),
            ncols,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Immutable row access.
    pub fn row(&self, i: usize) -> &[F] {
        &self.rows[i]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<F>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length differs from `ncols`.
    pub fn push_row(&mut self, row: Vec<F>) {
        assert_eq!(row.len(), self.ncols, "row length mismatch");
        self.rows.push(row);
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics if `v.len() != ncols`.
    pub fn mul_vec(&self, v: &[F]) -> Vec<F> {
        assert_eq!(v.len(), self.ncols, "dimension mismatch");
        self.rows.iter().map(|r| vector::dot(r, v)).collect()
    }

    /// Matrix-matrix product.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn mul(&self, other: &Matrix<F>) -> Matrix<F> {
        assert_eq!(self.ncols, other.nrows(), "dimension mismatch");
        let mut out = Matrix::new(other.ncols);
        for r in &self.rows {
            let mut row = vec![F::ZERO; other.ncols];
            for (c, other_row) in r.iter().zip(other.rows()) {
                vector::scale_add(&mut row, other_row, *c);
            }
            out.push_row(row);
        }
        out
    }

    /// Transforms `self` to *reduced* row-echelon form in place and returns
    /// the pivot column of each (nonzero) row, in order.
    ///
    /// Zero rows are removed. After the call, each pivot entry is 1 and is
    /// the only nonzero entry of its column.
    pub fn rref(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut pivot_row = 0usize;
        for col in 0..self.ncols {
            // Find a row at or below pivot_row with a nonzero entry in col.
            let Some(sel) = (pivot_row..self.rows.len()).find(|&r| !self.rows[r][col].is_zero())
            else {
                continue;
            };
            self.rows.swap(pivot_row, sel);
            // Normalize the pivot to 1.
            let p = self.rows[pivot_row][col];
            let pinv = p.inv().expect("pivot is nonzero");
            vector::scale(&mut self.rows[pivot_row], pinv);
            // Eliminate the column from every other row.
            let pivot = self.rows[pivot_row].clone();
            for (r, row) in self.rows.iter_mut().enumerate() {
                if r != pivot_row && !row[col].is_zero() {
                    let c = row[col].neg();
                    vector::scale_add(row, &pivot, c);
                }
            }
            pivots.push(col);
            pivot_row += 1;
            if pivot_row == self.rows.len() {
                break;
            }
        }
        self.rows.truncate(pivot_row);
        pivots
    }

    /// The rank of the matrix (leaves `self` unchanged).
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.rref().len()
    }

    /// Solves `A x = b` for one solution, or `None` if inconsistent.
    ///
    /// # Panics
    /// Panics if `b.len() != nrows`.
    pub fn solve(&self, b: &[F]) -> Option<Vec<F>> {
        assert_eq!(b.len(), self.nrows(), "rhs length mismatch");
        // Augment with b as an extra column and reduce.
        let mut aug = Matrix::new(self.ncols + 1);
        for (r, bi) in self.rows.iter().zip(b) {
            let mut row = r.clone();
            row.push(*bi);
            aug.push_row(row);
        }
        let pivots = aug.rref();
        // Inconsistent iff some pivot lies in the augmented column.
        if pivots.last() == Some(&self.ncols) {
            return None;
        }
        let mut x = vec![F::ZERO; self.ncols];
        for (row, &p) in aug.rows.iter().zip(&pivots) {
            x[p] = row[self.ncols];
        }
        Some(x)
    }

    /// The inverse of a square matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<Matrix<F>> {
        let n = self.nrows();
        if n != self.ncols {
            return None;
        }
        let mut aug = Matrix::new(2 * n);
        for (i, r) in self.rows.iter().enumerate() {
            let mut row = r.clone();
            row.extend(vector::unit_vec::<F>(n, i));
            aug.push_row(row);
        }
        let pivots = aug.rref();
        if pivots.len() < n || pivots[..n] != (0..n).collect::<Vec<_>>()[..] {
            return None;
        }
        let mut out = Matrix::new(n);
        for r in aug.rows() {
            out.push_row(r[n..].to_vec());
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf256, Gf257};
    use rand::{rngs::StdRng, SeedableRng};

    fn m257(data: &[&[u64]]) -> Matrix<Gf257> {
        Matrix::from_rows(
            data.iter()
                .map(|r| r.iter().map(|&x| Gf257::from_u64(x)).collect())
                .collect(),
        )
    }

    #[test]
    fn rref_of_identity_is_identity() {
        let mut m: Matrix<Gf256> = Matrix::identity(5);
        let pivots = m.rref();
        assert_eq!(pivots, vec![0, 1, 2, 3, 4]);
        assert_eq!(m, Matrix::identity(5));
    }

    #[test]
    fn rank_of_dependent_rows() {
        let m = m257(&[&[1, 2, 3], &[2, 4, 6], &[1, 1, 1]]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn rref_produces_cleared_pivot_columns() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            let mut m: Matrix<Gf256> = Matrix::random(6, 9, &mut rng);
            let pivots = m.rref();
            for (r, &p) in pivots.iter().enumerate() {
                assert_eq!(m.row(r)[p], Gf256::ONE);
                for (r2, row) in m.rows().iter().enumerate() {
                    if r2 != r {
                        assert!(row[p].is_zero(), "pivot column {p} not cleared");
                    }
                }
            }
            // Pivot columns strictly increase.
            assert!(pivots.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let a: Matrix<Gf257> = Matrix::random(7, 7, &mut rng);
            let x = crate::vector::random_vec::<Gf257, _>(7, &mut rng);
            let b = a.mul_vec(&x);
            let got = a.solve(&b).expect("consistent by construction");
            // Any solution must reproduce b.
            assert_eq!(a.mul_vec(&got), b);
        }
    }

    #[test]
    fn solve_detects_inconsistency() {
        let a = m257(&[&[1, 0], &[1, 0]]);
        assert!(a.solve(&[Gf257::new(1), Gf257::new(2)]).is_none());
    }

    #[test]
    fn inverse_round_trips() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut found = 0;
        for _ in 0..20 {
            let a: Matrix<Gf256> = Matrix::random(5, 5, &mut rng);
            if let Some(ai) = a.inverse() {
                assert_eq!(a.mul(&ai), Matrix::identity(5));
                assert_eq!(ai.mul(&a), Matrix::identity(5));
                found += 1;
            }
        }
        assert!(
            found > 10,
            "random GF(256) matrices should usually be invertible"
        );
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let a = m257(&[&[1, 2], &[2, 4]]);
        assert!(a.inverse().is_none());
        let rect = m257(&[&[1, 2, 3]]);
        assert!(rect.inverse().is_none());
    }

    #[test]
    fn mul_is_associative_with_vec() {
        let mut rng = StdRng::seed_from_u64(13);
        let a: Matrix<Gf256> = Matrix::random(4, 5, &mut rng);
        let b: Matrix<Gf256> = Matrix::random(5, 3, &mut rng);
        let v = crate::vector::random_vec::<Gf256, _>(3, &mut rng);
        assert_eq!(a.mul(&b).mul_vec(&v), a.mul_vec(&b.mul_vec(&v)));
    }
}
