//! GF(2), the binary field — the paper's default coding field.
//!
//! Section 5.1: "For most of this paper one can choose q = 2, i.e., take the
//! natural token representation as a bit sequence of length d′ = d and
//! replace linear combinations by XORs." This type is the *element-wise*
//! representation used by the generic linear algebra; the protocol hot path
//! uses the bit-packed [`crate::Gf2Vec`] instead.

use crate::field::Field;
use rand::{Rng, RngExt};

/// An element of GF(2): 0 or 1. Addition is XOR, multiplication is AND.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Gf2(u8);

impl Gf2 {
    /// Builds an element from a boolean.
    pub fn from_bool(b: bool) -> Self {
        Gf2(b as u8)
    }

    /// Returns the element as a boolean.
    pub fn as_bool(self) -> bool {
        self.0 != 0
    }
}

impl core::fmt::Debug for Gf2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Field for Gf2 {
    const ZERO: Self = Gf2(0);
    const ONE: Self = Gf2(1);

    fn order() -> u128 {
        2
    }

    fn add(self, rhs: Self) -> Self {
        Gf2(self.0 ^ rhs.0)
    }

    fn sub(self, rhs: Self) -> Self {
        // Characteristic 2: subtraction and addition coincide.
        self.add(rhs)
    }

    fn neg(self) -> Self {
        self
    }

    fn mul(self, rhs: Self) -> Self {
        Gf2(self.0 & rhs.0)
    }

    fn inv(self) -> Option<Self> {
        if self.0 == 1 {
            Some(self)
        } else {
            None
        }
    }

    fn from_u64(x: u64) -> Self {
        Gf2((x & 1) as u8)
    }

    fn to_u64(self) -> u64 {
        self.0 as u64
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Gf2::from_bool(rng.random())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        let (z, o) = (Gf2::ZERO, Gf2::ONE);
        assert_eq!(z.add(z), z);
        assert_eq!(z.add(o), o);
        assert_eq!(o.add(o), z);
        assert_eq!(o.mul(o), o);
        assert_eq!(o.mul(z), z);
        assert_eq!(o.inv(), Some(o));
        assert_eq!(z.inv(), None);
    }

    #[test]
    fn from_u64_reduces_mod_2() {
        assert_eq!(Gf2::from_u64(17), Gf2::ONE);
        assert_eq!(Gf2::from_u64(42), Gf2::ZERO);
    }

    #[test]
    fn bool_round_trip() {
        assert!(Gf2::from_bool(true).as_bool());
        assert!(!Gf2::from_bool(false).as_bool());
    }
}
