//! Property-based tests for the field and linear-algebra substrate.

use dyncode_gf::{
    matrix::Matrix, vector, Field, Gf2, Gf256, Gf2Basis, Gf2Vec, Mersenne61, Subspace,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn gf256() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(|x| Gf256::from_u64(x as u64))
}

fn m61() -> impl Strategy<Value = Mersenne61> {
    any::<u64>().prop_map(Mersenne61::from_u64)
}

proptest! {
    #[test]
    fn gf256_axioms(a in gf256(), b in gf256(), c in gf256()) {
        dyncode_gf::field::assert_field_axioms(a, b, c);
    }

    #[test]
    fn mersenne61_axioms(a in m61(), b in m61(), c in m61()) {
        dyncode_gf::field::assert_field_axioms(a, b, c);
    }

    #[test]
    fn gf2_axioms(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        dyncode_gf::field::assert_field_axioms(
            Gf2::from_bool(a),
            Gf2::from_bool(b),
            Gf2::from_bool(c),
        );
    }

    #[test]
    fn subspace_insert_is_monotone_and_idempotent(
        seed in any::<u64>(),
        len in 1usize..24,
        inserts in 1usize..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s: Subspace<Gf256> = Subspace::new(len);
        let mut prev_dim = 0;
        for _ in 0..inserts {
            let v = vector::random_vec::<Gf256, _>(len, &mut rng);
            let was_member = s.contains(&v);
            let innovative = s.insert(v.clone());
            // Innovation <=> not previously in the span.
            prop_assert_eq!(innovative, !was_member);
            prop_assert!(s.dim() >= prev_dim);
            prop_assert!(s.dim() <= len);
            prev_dim = s.dim();
            // After insertion the vector is always a member.
            prop_assert!(s.contains(&v));
            // Re-inserting is never innovative.
            prop_assert!(!s.insert(v));
        }
    }

    #[test]
    fn packed_and_dense_gf2_agree(
        seed in any::<u64>(),
        len in 1usize..80,
        inserts in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut packed = Gf2Basis::new(len);
        let mut dense: Subspace<Gf2> = Subspace::new(len);
        for _ in 0..inserts {
            let v = Gf2Vec::random(len, &mut rng);
            let dv: Vec<Gf2> = (0..len).map(|i| Gf2::from_bool(v.get(i))).collect();
            prop_assert_eq!(packed.insert(v), dense.insert(dv));
            prop_assert_eq!(packed.dim(), dense.dim());
            prop_assert_eq!(packed.pivots(), dense.pivots());
        }
    }

    #[test]
    fn decode_inverts_encode(
        seed in any::<u64>(),
        k in 1usize..12,
        d in 1usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let payloads: Vec<Gf2Vec> = (0..k).map(|_| Gf2Vec::random(d, &mut rng)).collect();
        let sources: Vec<Gf2Vec> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| Gf2Vec::unit(k, i).concat(p))
            .collect();
        let mut basis = Gf2Basis::new(k + d);
        // Feed random combinations until full coefficient rank; bounded
        // whp, so a generous cap keeps the test deterministic.
        let mut guard = 0;
        while basis.prefix_rank(k) < k {
            let mut m = Gf2Vec::zeros(k + d);
            for s in &sources {
                if rand::RngExt::random(&mut rng) {
                    m.xor_assign(s);
                }
            }
            basis.insert(m);
            guard += 1;
            prop_assert!(guard < 2000, "failed to reach full rank");
        }
        prop_assert_eq!(basis.decode(k), Some(payloads));
    }

    #[test]
    fn bytes_round_trip(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let v = Gf2Vec::from_bools(&bits);
        prop_assert_eq!(Gf2Vec::from_bytes(&v.to_bytes(), bits.len()), v);
    }

    #[test]
    fn matrix_solve_is_sound(seed in any::<u64>(), n in 1usize..8, m in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Matrix<Gf256> = Matrix::random(n, m, &mut rng);
        let x = vector::random_vec::<Gf256, _>(m, &mut rng);
        let b = a.mul_vec(&x);
        // Solutions exist by construction; any returned solution must
        // reproduce b exactly.
        let got = a.solve(&b);
        prop_assert!(got.is_some());
        prop_assert_eq!(a.mul_vec(&got.unwrap()), b);
    }

    #[test]
    fn rref_rank_never_exceeds_dims(seed in any::<u64>(), n in 1usize..10, m in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Matrix<Mersenne61> = Matrix::random(n, m, &mut rng);
        let r = a.rank();
        prop_assert!(r <= n.min(m));
    }

    #[test]
    fn sensing_respects_orthogonality(
        seed in any::<u64>(),
        k in 2usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // A basis spanning exactly e_0: senses mu iff mu_0 != 0.
        let mut b = Gf2Basis::new(k);
        b.insert(Gf2Vec::unit(k, 0));
        let mu = Gf2Vec::random(k, &mut rng);
        prop_assert_eq!(b.senses(&mu), mu.get(0));
    }
}
