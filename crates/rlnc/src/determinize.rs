//! Derandomizing random linear network coding (Section 6).
//!
//! The paper's Theorem 6.1 shows that with a large enough field
//! (q = n^Ω(k)) even an **omniscient** adversary — one that knows every
//! coefficient the nodes will ever draw — cannot prevent fast mixing; the
//! proof replaces fresh randomness by a fixed "advice" table of
//! pseudo-random choices per (ID, round). Corollary 6.2 then extracts
//! deterministic algorithms.
//!
//! We realize the operational content at machine-representable field
//! sizes:
//!
//! * [`CoefficientSchedule`] — the advice table: a deterministic,
//!   seed-derived coefficient sequence per (node, round). Nodes using it
//!   are fully deterministic given the seed (the analogue of the paper's
//!   non-uniform advice matrix; the "lexicographically first" matrix is
//!   replaced by seed 0).
//! * [`omniscient_stall_run`] — the strongest adversary this model admits:
//!   it evaluates every node's (deterministic) next message *before*
//!   choosing the topology and wires the network to minimize innovative
//!   deliveries, bridging components only where forced by the
//!   connectivity requirement. Over GF(2) this adversary stalls progress
//!   dramatically; over GF(2^61−1) it cannot find non-innovative edges and
//!   dissemination completes in O(n + k) — exactly the q-dependence
//!   Theorem 6.1 formalizes.

use crate::node::DenseNode;
use crate::packet::DensePacket;
use dyncode_gf::Field;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64, the standard 64-bit finalizer used to derive per-(node,
/// round) seeds from a master seed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic coefficient advice table: every `(node, round)` maps to
/// a reproducible coefficient vector. Two schedules with the same seed are
/// identical, which is what lets all nodes (and the analysis) agree on the
/// "advice matrix" without communication.
#[derive(Clone, Debug)]
pub struct CoefficientSchedule {
    seed: u64,
}

impl CoefficientSchedule {
    /// The schedule derived from `seed` (seed 0 plays the role of the
    /// paper's canonical lexicographically-first advice).
    pub fn new(seed: u64) -> Self {
        CoefficientSchedule { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The advice coefficients for `node` at `round`, `count` of them.
    pub fn coefficients<F: Field>(&self, node: usize, round: usize, count: usize) -> Vec<F> {
        let s = splitmix64(self.seed ^ splitmix64(node as u64 ^ splitmix64(round as u64)));
        let mut rng = StdRng::seed_from_u64(s);
        (0..count).map(|_| F::random(&mut rng)).collect()
    }
}

/// Outcome of an omniscient-adversary run.
#[derive(Clone, Debug)]
pub struct StallResult {
    /// Rounds until all nodes decoded (or the cap).
    pub rounds: usize,
    /// Did every node decode within the cap?
    pub completed: bool,
    /// Total innovative deliveries that happened despite the adversary.
    pub innovative_deliveries: usize,
    /// Rounds in which the adversary found a fully "safe" topology (no
    /// innovative delivery at all).
    pub fully_stalled_rounds: usize,
}

/// Runs k-indexed-broadcast with deterministic advice coefficients against
/// the omniscient stalling adversary, over field `F`.
///
/// Setup: `n` nodes, token `i` (of `payload_len` symbols) seeded at node
/// `i mod n`. Each round every node's message is *determined* by the
/// schedule; the adversary computes all messages, then:
///
/// 1. collects all "safe" edges `{u,v}` where neither endpoint's message is
///    innovative for the other;
/// 2. if the safe graph is connected, uses it (a fully stalled round —
///    possible only when non-innovative coincidences exist, i.e., small q);
/// 3. otherwise connects the safe components with the fewest possible
///    bridge edges, each chosen to minimize innovative deliveries.
///
/// # Panics
/// Panics if `k == 0` or `n == 0`.
pub fn omniscient_stall_run<F: Field>(
    n: usize,
    k: usize,
    payload_len: usize,
    seed: u64,
    max_rounds: usize,
) -> StallResult {
    assert!(n > 0 && k > 0, "need nodes and tokens");
    let schedule = CoefficientSchedule::new(seed);
    let mut payload_rng = StdRng::seed_from_u64(splitmix64(seed ^ 0xDEAD));
    let mut nodes: Vec<DenseNode<F>> = (0..n).map(|_| DenseNode::new(k, payload_len)).collect();
    for i in 0..k {
        let payload = dyncode_gf::vector::random_vec::<F, _>(payload_len, &mut payload_rng);
        nodes[i % n].seed_source(i, &payload);
    }

    let mut innovative_deliveries = 0usize;
    let mut fully_stalled_rounds = 0usize;
    let all_done = |nodes: &[DenseNode<F>]| nodes.iter().all(|nd| nd.coefficient_rank() == k);

    for round in 0..max_rounds {
        if all_done(&nodes) {
            return StallResult {
                rounds: round,
                completed: true,
                innovative_deliveries,
                fully_stalled_rounds,
            };
        }
        // The omniscient step: all messages are known before the topology.
        let messages: Vec<Option<DensePacket<F>>> = (0..n)
            .map(|u| {
                let coeffs = schedule.coefficients::<F>(u, round, nodes[u].rank());
                nodes[u].emit_with_coefficients(&coeffs)
            })
            .collect();
        let harmful = |u: usize, v: usize| -> usize {
            // Innovative deliveries the edge {u,v} would cause.
            let mut h = 0;
            if let Some(m) = &messages[u] {
                if !nodes[v].space().contains(&m.data) {
                    h += 1;
                }
            }
            if let Some(m) = &messages[v] {
                if !nodes[u].space().contains(&m.data) {
                    h += 1;
                }
            }
            h
        };

        // Safe subgraph and its components (union-find).
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = x;
            while parent[c] != r {
                let nx = parent[c];
                parent[c] = r;
                c = nx;
            }
            r
        }
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                if harmful(u, v) == 0 {
                    let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
                    if ru != rv {
                        // A spanning forest of the safe graph suffices.
                        parent[ru] = rv;
                        edges.push((u, v));
                    }
                }
            }
        }
        // Bridge remaining components with minimum-harm edges.
        let mut stalled = true;
        loop {
            let roots: Vec<usize> = (0..n).filter(|&u| find(&mut parent, u) == u).collect();
            if roots.len() <= 1 {
                break;
            }
            let mut best: Option<(usize, (usize, usize))> = None;
            for u in 0..n {
                for v in u + 1..n {
                    if find(&mut parent, u) != find(&mut parent, v) {
                        let h = harmful(u, v);
                        if best.is_none_or(|(bh, _)| h < bh) {
                            best = Some((h, (u, v)));
                        }
                    }
                }
            }
            let (h, (u, v)) = best.expect("components > 1 implies a crossing pair");
            if h > 0 {
                stalled = false;
            }
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            parent[ru] = rv;
            edges.push((u, v));
        }
        if stalled {
            fully_stalled_rounds += 1;
        }

        // Deliver over the chosen topology.
        let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, v) in &edges {
            incoming[u].push(v);
            incoming[v].push(u);
        }
        for u in 0..n {
            for &v in &incoming[u] {
                if let Some(m) = &messages[v] {
                    if nodes[u].receive(m) {
                        innovative_deliveries += 1;
                    }
                }
            }
        }
    }

    StallResult {
        rounds: max_rounds,
        completed: all_done(&nodes),
        innovative_deliveries,
        fully_stalled_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncode_gf::{Gf2, Gf256, Mersenne61};

    #[test]
    fn schedule_is_deterministic_and_varied() {
        let s1 = CoefficientSchedule::new(42);
        let s2 = CoefficientSchedule::new(42);
        let a: Vec<Gf256> = s1.coefficients(3, 7, 10);
        let b: Vec<Gf256> = s2.coefficients(3, 7, 10);
        assert_eq!(a, b, "same seed, same advice");
        let c: Vec<Gf256> = s1.coefficients(3, 8, 10);
        assert_ne!(a, c, "different rounds, different advice");
        let d: Vec<Gf256> = s1.coefficients(4, 7, 10);
        assert_ne!(a, d, "different nodes, different advice");
        let e: Vec<Gf256> = CoefficientSchedule::new(43).coefficients(3, 7, 10);
        assert_ne!(a, e, "different seeds, different advice");
    }

    #[test]
    fn large_field_defeats_the_omniscient_adversary() {
        // Theorem 6.1's operational content: with q huge the omniscient
        // adversary cannot stall; completion stays O(n + k).
        let (n, k) = (10, 10);
        let r = omniscient_stall_run::<Mersenne61>(n, k, 2, 1, 40 * (n + k));
        assert!(r.completed, "M61 run failed to complete: {r:?}");
        assert!(
            r.rounds <= 8 * (n + k),
            "M61 took {} rounds, expected O(n+k)",
            r.rounds
        );
        assert_eq!(
            r.fully_stalled_rounds, 0,
            "a 2^-61 coincidence should never appear at this scale"
        );
    }

    #[test]
    fn gf2_is_stallable_by_the_omniscient_adversary() {
        // Against GF(2) the same adversary finds non-innovative messages
        // constantly; it should stall many rounds entirely and push the
        // completion time well past the large-field run.
        let (n, k) = (10, 10);
        let m61 = omniscient_stall_run::<Mersenne61>(n, k, 2, 1, 40 * (n + k));
        let gf2 = omniscient_stall_run::<Gf2>(n, k, 2, 1, 40 * (n + k));
        assert!(
            gf2.fully_stalled_rounds > 0,
            "omniscient adversary should fully stall some GF(2) rounds"
        );
        assert!(
            !gf2.completed || gf2.rounds >= 2 * m61.rounds,
            "GF(2) should be far slower under omniscience: gf2={gf2:?} m61={m61:?}"
        );
    }

    #[test]
    fn deterministic_runs_replay_exactly() {
        let a = omniscient_stall_run::<Gf256>(8, 8, 2, 5, 500);
        let b = omniscient_stall_run::<Gf256>(8, 8, 2, 5, 500);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.innovative_deliveries, b.innovative_deliveries);
    }
}
