//! Per-node RLNC state: the received-span basis plus the emit/receive/
//! decode operations of the paper's coding algorithm (Section 5.1).
//!
//! "At each round, any node computes a random linear combination of any
//! vectors received so far (if any) and broadcasts this as a message to
//! its (unknown) neighbors." The state is *knowledge-based*: everything a
//! node does depends only on the subspace spanned by what it received.

use crate::packet::{DensePacket, Gf2Packet};
use dyncode_gf::{vector, Field, Gf2Basis, Gf2Vec, Subspace};
use rand::Rng;

/// A GF(2) coding node for a fixed generation: `dims` coded indices with
/// `payload_bits`-bit payloads.
#[derive(Clone, Debug)]
pub struct Gf2Node {
    basis: Gf2Basis,
    dims: usize,
    payload_bits: usize,
}

impl Gf2Node {
    /// A fresh node that has received nothing.
    pub fn new(dims: usize, payload_bits: usize) -> Self {
        Gf2Node {
            basis: Gf2Basis::new(dims + payload_bits),
            dims,
            payload_bits,
        }
    }

    /// Number of coded dimensions (k in the paper).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Payload size in bits.
    pub fn payload_bits(&self) -> usize {
        self.payload_bits
    }

    /// The dimension of the received span.
    pub fn rank(&self) -> usize {
        self.basis.dim()
    }

    /// Seeds the node with source index `i` and its payload ("each node
    /// that initially knows t_i receives this vector before the first
    /// round").
    ///
    /// # Panics
    /// Panics if the payload width disagrees or `i >= dims`.
    pub fn seed_source(&mut self, i: usize, payload: &Gf2Vec) {
        assert!(i < self.dims, "source index out of range");
        assert_eq!(payload.len(), self.payload_bits, "payload width mismatch");
        self.basis
            .insert(Gf2Packet::source(self.dims, i, payload).vec);
    }

    /// Receives a packet; returns `true` iff it was innovative.
    ///
    /// # Panics
    /// Panics if the packet shape disagrees with this node's generation.
    pub fn receive(&mut self, packet: &Gf2Packet) -> bool {
        assert_eq!(packet.dims, self.dims, "generation mismatch");
        assert_eq!(packet.payload_bits(), self.payload_bits, "payload mismatch");
        self.basis.insert(packet.vec.clone())
    }

    /// Emits a uniformly random combination of the received span, or
    /// `None` if nothing has been received.
    pub fn emit<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Gf2Packet> {
        self.basis
            .random_combination(rng)
            .map(|v| Gf2Packet::new(v, self.dims))
    }

    /// Rank of the coefficient projection (how many of the k dimensions
    /// are pinned down).
    pub fn coefficient_rank(&self) -> usize {
        self.basis.prefix_rank(self.dims)
    }

    /// Full decode: all `dims` payloads, available iff the coefficient
    /// projection has full rank.
    pub fn decode(&self) -> Option<Vec<Gf2Vec>> {
        self.basis.decode(self.dims)
    }

    /// Partial decode: the payloads individually pinned down so far.
    pub fn decode_available(&self) -> Vec<Option<Gf2Vec>> {
        self.basis.decode_available(self.dims)
    }

    /// Sensing test (Definition 5.1) against a coefficient-space direction.
    pub fn senses(&self, mu: &Gf2Vec) -> bool {
        self.basis.senses(mu)
    }

    /// Read-only access to the underlying basis.
    pub fn basis(&self) -> &Gf2Basis {
        &self.basis
    }
}

/// A coding node over an arbitrary field (used by the field-size and
/// derandomization experiments).
#[derive(Clone, Debug)]
pub struct DenseNode<F: Field> {
    space: Subspace<F>,
    dims: usize,
    payload_len: usize,
}

impl<F: Field> DenseNode<F> {
    /// A fresh node for `dims` coded indices with `payload_len`-symbol
    /// payloads.
    pub fn new(dims: usize, payload_len: usize) -> Self {
        DenseNode {
            space: Subspace::new(dims + payload_len),
            dims,
            payload_len,
        }
    }

    /// Number of coded dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Payload length in symbols.
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// The dimension of the received span.
    pub fn rank(&self) -> usize {
        self.space.dim()
    }

    /// Seeds source `i` with its payload.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn seed_source(&mut self, i: usize, payload: &[F]) {
        assert_eq!(payload.len(), self.payload_len, "payload width mismatch");
        self.space
            .insert(DensePacket::source(self.dims, i, payload).data);
    }

    /// Receives a packet; returns `true` iff innovative.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn receive(&mut self, packet: &DensePacket<F>) -> bool {
        assert_eq!(packet.dims, self.dims, "generation mismatch");
        assert_eq!(packet.payload_len(), self.payload_len, "payload mismatch");
        self.space.insert(packet.data.clone())
    }

    /// Emits a random combination with coefficients from `rng`.
    pub fn emit<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<DensePacket<F>> {
        self.space
            .random_combination(rng)
            .map(|v| DensePacket::new(v, self.dims))
    }

    /// Emits the combination `sum_j coeffs[j] * basis_j` for externally
    /// supplied coefficients — the hook used by the *deterministic*
    /// algorithms of Section 6, where coefficients come from a
    /// pseudorandom advice schedule instead of fresh coins.
    ///
    /// Returns `None` if nothing has been received. Unused trailing
    /// coefficients are ignored; missing ones default to zero.
    pub fn emit_with_coefficients(&self, coeffs: &[F]) -> Option<DensePacket<F>> {
        let basis = self.space.basis();
        if basis.is_empty() {
            return None;
        }
        let mut out = vec![F::ZERO; self.dims + self.payload_len];
        for (row, &c) in basis.iter().zip(coeffs) {
            vector::scale_add(&mut out, row, c);
        }
        Some(DensePacket::new(out, self.dims))
    }

    /// Rank of the coefficient projection.
    pub fn coefficient_rank(&self) -> usize {
        self.space.prefix_rank(self.dims)
    }

    /// Full decode, available iff the coefficient projection has rank
    /// `dims`.
    pub fn decode(&self) -> Option<Vec<Vec<F>>> {
        self.space.decode(self.dims)
    }

    /// Sensing test against a direction in coefficient space.
    pub fn senses(&self, mu: &[F]) -> bool {
        self.space.senses(mu)
    }

    /// Read-only access to the span.
    pub fn space(&self) -> &Subspace<F> {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncode_gf::Gf256;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn gf2_two_node_relay_decodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let k = 8;
        let d = 16;
        let payloads: Vec<Gf2Vec> = (0..k).map(|_| Gf2Vec::random(d, &mut rng)).collect();
        let mut src = Gf2Node::new(k, d);
        for (i, p) in payloads.iter().enumerate() {
            src.seed_source(i, p);
        }
        assert_eq!(src.rank(), k);
        assert_eq!(src.decode().as_deref(), Some(&payloads[..]));

        // Relay random combinations to a sink until it decodes.
        let mut sink = Gf2Node::new(k, d);
        let mut rounds = 0;
        while sink.decode().is_none() {
            let pkt = src.emit(&mut rng).unwrap();
            sink.receive(&pkt);
            rounds += 1;
            assert!(rounds < 200, "sink failed to decode");
        }
        assert_eq!(sink.decode().unwrap(), payloads);
        // Over GF(2) each combination is innovative w.p. ~1/2 per missing
        // dim; decoding in ~2k receptions is the expected regime.
        assert!(
            rounds >= k,
            "cannot decode k dims from fewer than k packets"
        );
    }

    #[test]
    fn innovation_reporting_is_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = Gf2Node::new(4, 4);
        a.seed_source(0, &Gf2Vec::random(4, &mut rng));
        let pkt = a.emit(&mut rng).unwrap();
        let mut b = Gf2Node::new(4, 4);
        // Zero combinations are possible over GF(2); only nonzero ones are
        // innovative for a fresh node.
        let innovative = b.receive(&pkt);
        assert_eq!(innovative, !pkt.vec.is_zero());
        // Receiving the same packet again is never innovative.
        assert!(!b.receive(&pkt));
    }

    #[test]
    fn dense_node_decodes_over_gf256() {
        let mut rng = StdRng::seed_from_u64(3);
        let (k, m) = (6, 5);
        let payloads: Vec<Vec<Gf256>> = (0..k)
            .map(|_| (0..m).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let mut src: DenseNode<Gf256> = DenseNode::new(k, m);
        for (i, p) in payloads.iter().enumerate() {
            src.seed_source(i, p);
        }
        let mut sink: DenseNode<Gf256> = DenseNode::new(k, m);
        let mut receptions = 0;
        while sink.decode().is_none() {
            sink.receive(&src.emit(&mut rng).unwrap());
            receptions += 1;
            assert!(receptions < 50, "GF(256) should decode in ≈k receptions");
        }
        assert_eq!(sink.decode().unwrap(), payloads);
        // 1 - 1/q innovation probability: k..k+2 receptions typical.
        assert!(receptions <= k + 3, "took {receptions} receptions");
    }

    #[test]
    fn emit_with_coefficients_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut n: DenseNode<Gf256> = DenseNode::new(3, 2);
        n.seed_source(0, &[Gf256::from_u64(1), Gf256::from_u64(2)]);
        n.seed_source(1, &[Gf256::from_u64(3), Gf256::from_u64(4)]);
        let coeffs: Vec<Gf256> = (0..3).map(|_| Gf256::random(&mut rng)).collect();
        let a = n.emit_with_coefficients(&coeffs).unwrap();
        let b = n.emit_with_coefficients(&coeffs).unwrap();
        assert_eq!(a, b, "same coefficients, same packet");
        let empty: DenseNode<Gf256> = DenseNode::new(3, 2);
        assert!(empty.emit_with_coefficients(&coeffs).is_none());
    }

    #[test]
    fn partial_decode_grows_monotonically() {
        let mut rng = StdRng::seed_from_u64(5);
        let k = 6;
        let mut src = Gf2Node::new(k, 8);
        let payloads: Vec<Gf2Vec> = (0..k).map(|_| Gf2Vec::random(8, &mut rng)).collect();
        for (i, p) in payloads.iter().enumerate() {
            src.seed_source(i, p);
        }
        let mut sink = Gf2Node::new(k, 8);
        let mut prev = 0;
        for _ in 0..100 {
            // Mix in occasional direct source packets to create partials.
            if rng.random_bool(0.3) {
                let i = rng.random_range(0..k);
                sink.receive(&Gf2Packet::source(k, i, &payloads[i]));
            } else {
                sink.receive(&src.emit(&mut rng).unwrap());
            }
            let avail = sink
                .decode_available()
                .iter()
                .filter(|t| t.is_some())
                .count();
            assert!(avail >= prev, "partial decode regressed");
            prev = avail;
            if sink.decode().is_some() {
                break;
            }
        }
        assert_eq!(sink.decode().unwrap(), payloads);
    }
}
