//! # dyncode-rlnc
//!
//! Random linear network coding, as specified in Sections 5–6 of Haeupler
//! & Karger, *"Faster Information Dissemination in Dynamic Networks via
//! Network Coding"* (PODC 2011).
//!
//! * [`packet`] — coded packets `[coefficient header | payload]` with the
//!   honest bit accounting of Section 3 (the header is charged against the
//!   b-bit message budget).
//! * [`node`] — per-node coding state: received-span bases with
//!   innovative-insertion, random-combination emission, Gaussian decoding.
//!   [`node::Gf2Node`] is the bit-packed q = 2 hot path; [`node::DenseNode`]
//!   works over any field.
//! * [`sensing`] — the Section 5.3 projection analysis (Definition 5.1 /
//!   Lemma 5.2) as measurable instrumentation.
//! * [`block`] — grouping tokens into meta-token blocks (Section 7), the
//!   mechanism behind the quadratic-in-b speedup.
//! * [`determinize`] — Section 6: deterministic advice-coefficient
//!   schedules and the omniscient stalling adversary that separates small
//!   from large fields.
//!
//! # Example: one-hop coding beats token forwarding (Section 5.2)
//!
//! ```
//! use dyncode_rlnc::node::Gf2Node;
//! use dyncode_gf::Gf2Vec;
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let k = 32;
//! // A knows all k tokens; B misses exactly one, unknown to A.
//! let tokens: Vec<Gf2Vec> = (0..k).map(|_| Gf2Vec::random(16, &mut rng)).collect();
//! let mut a = Gf2Node::new(k, 16);
//! let mut b = Gf2Node::new(k, 16);
//! for (i, t) in tokens.iter().enumerate() {
//!     a.seed_source(i, t);
//!     if i != 17 { b.seed_source(i, t); }
//! }
//! // One coded message suffices where forwarding needs k/2 in expectation.
//! let mut sent = 0;
//! while b.decode().is_none() {
//!     b.receive(&a.emit(&mut rng).unwrap());
//!     sent += 1;
//! }
//! assert!(sent <= 4, "a few GF(2) combinations pin down the missing token");
//! assert_eq!(b.decode().unwrap()[17], tokens[17]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod determinize;
pub mod node;
pub mod packet;
pub mod sensing;

pub use block::{group_tokens, tokens_per_block, ungroup_tokens};
pub use determinize::{omniscient_stall_run, CoefficientSchedule, StallResult};
pub use node::{DenseNode, Gf2Node};
pub use packet::{DensePacket, Gf2Packet};
pub use sensing::{per_hop_sense_probability, SensingTracker};
