//! The projection ("sensing") analysis of Section 5.3, as measurable
//! instrumentation.
//!
//! Definition 5.1: a node *senses* a coefficient-space direction μ if it
//! has received a vector whose coefficient part is not orthogonal to μ.
//! Lemma 5.2: a node that senses μ passes the sense to any recipient of
//! its random combination with probability ≥ 1 − 1/q. The dissemination
//! proof tracks, for each μ, how the set of sensing nodes grows; this
//! module lets experiments watch exactly that process.

use dyncode_gf::{vector, Field, Gf2Vec, Subspace};
use rand::Rng;

/// Tracks which of a fixed set of GF(2) directions each node senses;
/// sensing is monotone, so the tracker only ever turns bits on.
#[derive(Clone, Debug)]
pub struct SensingTracker {
    /// `sensed[m][u]`: does node u sense direction m?
    sensed: Vec<Vec<bool>>,
    mus: Vec<Gf2Vec>,
}

impl SensingTracker {
    /// Tracks `mus` over `n` nodes.
    pub fn new(n: usize, mus: Vec<Gf2Vec>) -> Self {
        SensingTracker {
            sensed: vec![vec![false; n]; mus.len()],
            mus,
        }
    }

    /// `count` uniformly random nonzero directions in GF(2)^dims.
    pub fn random_directions<R: Rng + ?Sized>(
        n: usize,
        dims: usize,
        count: usize,
        rng: &mut R,
    ) -> Self {
        let mus = (0..count)
            .map(|_| loop {
                let v = Gf2Vec::random(dims, rng);
                if !v.is_zero() {
                    break v;
                }
            })
            .collect();
        SensingTracker::new(n, mus)
    }

    /// The tracked directions.
    pub fn directions(&self) -> &[Gf2Vec] {
        &self.mus
    }

    /// Updates node `u` against its current basis via a sensing oracle
    /// (`senses(mu)`), asserting monotonicity.
    pub fn observe(&mut self, u: usize, senses: impl Fn(&Gf2Vec) -> bool) {
        for (row, mu) in self.sensed.iter_mut().zip(&self.mus) {
            let now = senses(mu);
            debug_assert!(now || !row[u], "sensing must be monotone");
            if now {
                row[u] = true;
            }
        }
    }

    /// How many nodes sense direction `m`?
    pub fn count(&self, m: usize) -> usize {
        self.sensed[m].iter().filter(|&&b| b).count()
    }

    /// The minimum sensing count over all tracked directions — the
    /// bottleneck the union bound in Lemma 5.3 is about.
    pub fn min_count(&self) -> usize {
        (0..self.mus.len())
            .map(|m| self.count(m))
            .min()
            .unwrap_or(0)
    }

    /// Do all nodes sense all tracked directions?
    pub fn all_sensed(&self) -> bool {
        self.sensed.iter().all(|row| row.iter().all(|&b| b))
    }
}

/// Monte-Carlo estimate of the per-hop sense-transfer probability of
/// Lemma 5.2 for field `F`: build a random `span_dim`-dimensional subspace
/// of F^dims that senses a random μ, emit a random combination, and check
/// whether the recipient senses μ. The lemma asserts the estimate is
/// ≥ 1 − 1/q (with equality when exactly one basis direction overlaps μ).
pub fn per_hop_sense_probability<F: Field, R: Rng + ?Sized>(
    dims: usize,
    span_dim: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(span_dim >= 1 && span_dim <= dims, "bad span dimension");
    let mut transfers = 0usize;
    let mut valid = 0usize;
    while valid < trials {
        let mu = loop {
            let v = vector::random_vec::<F, _>(dims, rng);
            if !vector::is_zero(&v) {
                break v;
            }
        };
        let mut space = Subspace::new(dims);
        while space.dim() < span_dim {
            space.insert(vector::random_vec::<F, _>(dims, rng));
        }
        if !space.senses(&mu) {
            continue; // precondition of the lemma: the sender senses μ
        }
        valid += 1;
        let msg = space.random_combination(rng).expect("nonempty span");
        if !vector::dot(&msg[..dims], &mu).is_zero() {
            transfers += 1;
        }
    }
    transfers as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncode_gf::{Gf2, Gf256, Gf257};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn lemma_5_2_gf2_probability_at_least_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = per_hop_sense_probability::<Gf2, _>(12, 4, 3000, &mut rng);
        assert!(p >= 0.5 - 0.03, "GF(2) transfer probability {p} < 1 - 1/2");
    }

    #[test]
    fn lemma_5_2_gf256_probability_near_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = per_hop_sense_probability::<Gf256, _>(12, 4, 2000, &mut rng);
        assert!(
            p >= 1.0 - 1.0 / 256.0 - 0.01,
            "GF(256) transfer probability {p}"
        );
    }

    #[test]
    fn lemma_5_2_gf257_probability_near_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = per_hop_sense_probability::<Gf257, _>(10, 3, 2000, &mut rng);
        assert!(p >= 1.0 - 1.0 / 257.0 - 0.01);
    }

    #[test]
    fn tracker_counts_and_monotonicity() {
        let mut rng = StdRng::seed_from_u64(4);
        let dims = 8;
        let mut tracker = SensingTracker::random_directions(3, dims, 10, &mut rng);
        assert_eq!(tracker.min_count(), 0);
        // Node 0 gets a full basis: it senses every nonzero direction.
        let mut basis = dyncode_gf::Gf2Basis::new(dims);
        for i in 0..dims {
            basis.insert(Gf2Vec::unit(dims, i));
        }
        tracker.observe(0, |mu| basis.senses(mu));
        for m in 0..10 {
            assert_eq!(tracker.count(m), 1);
        }
        assert!(!tracker.all_sensed());
        // Observing again does not regress.
        tracker.observe(0, |mu| basis.senses(mu));
        assert_eq!(tracker.min_count(), 1);
    }
}
