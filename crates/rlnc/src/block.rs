//! Token blocking: grouping small tokens into larger "meta-tokens".
//!
//! Section 7: "they can be grouped into blocks of b/2d tokens, each of
//! total size b/2, and network coding can be used to disseminate b/2 of
//! these blocks simultaneously". Blocking is what lets the algorithms pay
//! one coefficient per *block* instead of per token — the mechanism behind
//! the quadratic-in-b speedup.

use dyncode_gf::Gf2Vec;

/// Groups `tokens` (each `token_bits` wide) into blocks of `per_block`
/// tokens, concatenated; the final block is zero-padded.
///
/// # Panics
/// Panics if `per_block == 0`, `tokens` is empty, or some token has the
/// wrong width.
pub fn group_tokens(tokens: &[Gf2Vec], token_bits: usize, per_block: usize) -> Vec<Gf2Vec> {
    assert!(per_block > 0, "blocks must hold at least one token");
    assert!(!tokens.is_empty(), "no tokens to group");
    for t in tokens {
        assert_eq!(t.len(), token_bits, "token width mismatch");
    }
    tokens
        .chunks(per_block)
        .map(|chunk| {
            let mut block = Gf2Vec::zeros(per_block * token_bits);
            for (i, t) in chunk.iter().enumerate() {
                block.splice(i * token_bits, t);
            }
            block
        })
        .collect()
}

/// Splits blocks back into exactly `count` tokens of `token_bits` each
/// (dropping the final block's padding).
///
/// # Panics
/// Panics if the blocks cannot contain `count` tokens of that width.
pub fn ungroup_tokens(blocks: &[Gf2Vec], token_bits: usize, count: usize) -> Vec<Gf2Vec> {
    let per_block = blocks
        .first()
        .map(|b| b.len() / token_bits)
        .expect("no blocks to ungroup");
    assert!(per_block > 0, "blocks narrower than a token");
    assert!(
        blocks.len() * per_block >= count,
        "blocks hold {} tokens, need {count}",
        blocks.len() * per_block
    );
    (0..count)
        .map(|i| {
            let block = &blocks[i / per_block];
            let off = (i % per_block) * token_bits;
            block.extract(off, off + token_bits)
        })
        .collect()
}

/// How many tokens of width `token_bits` fit in a block of `block_bits`.
pub fn tokens_per_block(block_bits: usize, token_bits: usize) -> usize {
    (block_bits / token_bits).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn group_ungroup_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        for (count, token_bits, per_block) in
            [(1usize, 8usize, 1usize), (7, 8, 3), (12, 5, 4), (9, 16, 2)]
        {
            let tokens: Vec<Gf2Vec> = (0..count)
                .map(|_| Gf2Vec::random(token_bits, &mut rng))
                .collect();
            let blocks = group_tokens(&tokens, token_bits, per_block);
            assert_eq!(blocks.len(), count.div_ceil(per_block));
            for b in &blocks {
                assert_eq!(b.len(), per_block * token_bits);
            }
            assert_eq!(ungroup_tokens(&blocks, token_bits, count), tokens);
        }
    }

    #[test]
    fn padding_is_zero() {
        let tokens = vec![Gf2Vec::from_bools(&[true, true])];
        let blocks = group_tokens(&tokens, 2, 3);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].count_ones(), 2);
        assert_eq!(blocks[0].len(), 6);
    }

    #[test]
    fn tokens_per_block_floors_but_stays_positive() {
        assert_eq!(tokens_per_block(64, 8), 8);
        assert_eq!(tokens_per_block(65, 8), 8);
        assert_eq!(tokens_per_block(4, 8), 1, "degenerate case clamps to 1");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_rejected() {
        let tokens = vec![Gf2Vec::zeros(4)];
        group_tokens(&tokens, 8, 2);
    }
}
