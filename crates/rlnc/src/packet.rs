//! Coded packets and their on-the-wire bit accounting.
//!
//! A random-linear-network-coding message is `[coefficient header | coded
//! payload]`. The paper's Section 3 point is that the header — one field
//! element per coded dimension — is *not* free: with k dimensions over
//! F_q the header costs k·⌈lg q⌉ bits, which competes with the payload for
//! the b-bit message budget. Every packet type here computes exactly that
//! cost, and the simulator enforces it.

use dyncode_gf::{Field, Gf2Vec};

/// A coded packet over GF(2): a single packed bit-vector
/// `[dims coefficient bits | payload bits]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gf2Packet {
    /// The concatenated coefficient + payload vector.
    pub vec: Gf2Vec,
    /// The number of leading coordinates that are coefficients.
    pub dims: usize,
}

impl Gf2Packet {
    /// Wraps a vector whose first `dims` coordinates are the coefficient
    /// header.
    ///
    /// # Panics
    /// Panics if `dims` exceeds the vector length.
    pub fn new(vec: Gf2Vec, dims: usize) -> Self {
        assert!(dims <= vec.len(), "header longer than packet");
        Gf2Packet { vec, dims }
    }

    /// The source packet for index `i` of `dims`: unit coefficient vector
    /// e_i followed by the payload.
    ///
    /// # Panics
    /// Panics if `i >= dims`.
    pub fn source(dims: usize, i: usize, payload: &Gf2Vec) -> Self {
        Gf2Packet::new(Gf2Vec::unit(dims, i).concat(payload), dims)
    }

    /// Payload length in bits.
    pub fn payload_bits(&self) -> usize {
        self.vec.len() - self.dims
    }

    /// The coefficient header.
    pub fn coefficients(&self) -> Gf2Vec {
        self.vec.extract(0, self.dims)
    }

    /// The coded payload.
    pub fn payload(&self) -> Gf2Vec {
        self.vec.extract(self.dims, self.vec.len())
    }

    /// On-the-wire size: header bits + payload bits (1 bit/symbol over
    /// GF(2)).
    pub fn bit_cost(&self) -> u64 {
        self.vec.len() as u64
    }
}

/// A coded packet over an arbitrary field: `data = [coefficients |
/// payload]` as field symbols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DensePacket<F: Field> {
    /// Concatenated coefficient + payload symbols.
    pub data: Vec<F>,
    /// Number of leading coefficient symbols.
    pub dims: usize,
}

impl<F: Field> DensePacket<F> {
    /// Wraps a symbol vector whose first `dims` entries are coefficients.
    ///
    /// # Panics
    /// Panics if `dims` exceeds the data length.
    pub fn new(data: Vec<F>, dims: usize) -> Self {
        assert!(dims <= data.len(), "header longer than packet");
        DensePacket { data, dims }
    }

    /// The source packet for index `i`: e_i followed by the payload.
    ///
    /// # Panics
    /// Panics if `i >= dims`.
    pub fn source(dims: usize, i: usize, payload: &[F]) -> Self {
        assert!(i < dims, "source index out of range");
        let mut data = vec![F::ZERO; dims];
        data[i] = F::ONE;
        data.extend_from_slice(payload);
        DensePacket { data, dims }
    }

    /// Payload length in symbols.
    pub fn payload_len(&self) -> usize {
        self.data.len() - self.dims
    }

    /// The coefficient header.
    pub fn coefficients(&self) -> &[F] {
        &self.data[..self.dims]
    }

    /// The coded payload symbols.
    pub fn payload(&self) -> &[F] {
        &self.data[self.dims..]
    }

    /// On-the-wire size: every symbol (header and payload) costs
    /// ⌈lg q⌉ bits.
    pub fn bit_cost(&self) -> u64 {
        self.data.len() as u64 * F::bits_per_symbol() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncode_gf::{Gf256, Mersenne61};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn gf2_packet_layout() {
        let mut rng = StdRng::seed_from_u64(1);
        let payload = Gf2Vec::random(20, &mut rng);
        let p = Gf2Packet::source(5, 2, &payload);
        assert_eq!(p.bit_cost(), 25);
        assert_eq!(p.payload_bits(), 20);
        assert_eq!(p.payload(), payload);
        let c = p.coefficients();
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn dense_packet_bit_cost_charges_field_width() {
        let payload = vec![Gf256::from_u64(7); 10];
        let p = DensePacket::source(4, 0, &payload);
        assert_eq!(p.bit_cost(), (4 + 10) * 8);
        let payload61 = vec![Mersenne61::from_u64(7); 10];
        let p61 = DensePacket::source(4, 0, &payload61);
        assert_eq!(p61.bit_cost(), (4 + 10) * 61);
    }

    #[test]
    fn dense_source_has_unit_header() {
        let p = DensePacket::source(3, 1, &[Gf256::from_u64(9)]);
        assert_eq!(p.coefficients(), &[Gf256::ZERO, Gf256::ONE, Gf256::ZERO]);
        assert_eq!(p.payload(), &[Gf256::from_u64(9)]);
    }

    #[test]
    #[should_panic(expected = "header longer than packet")]
    fn oversized_header_rejected() {
        let _ = Gf2Packet::new(Gf2Vec::zeros(3), 4);
    }
}
