//! Property-based tests for the coding machinery: encode/decode
//! round-trips over every field, blocking round-trips, innovation
//! semantics, and the determinize schedule.

use dyncode_gf::{Field, Gf256, Gf2Vec, Mersenne61};
use dyncode_rlnc::block::{group_tokens, ungroup_tokens};
use dyncode_rlnc::determinize::CoefficientSchedule;
use dyncode_rlnc::node::{DenseNode, Gf2Node};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn relay_decode_gf2(k: usize, d: usize, seed: u64) -> bool {
    let mut rng = StdRng::seed_from_u64(seed);
    let payloads: Vec<Gf2Vec> = (0..k).map(|_| Gf2Vec::random(d, &mut rng)).collect();
    let mut src = Gf2Node::new(k, d);
    for (i, p) in payloads.iter().enumerate() {
        src.seed_source(i, p);
    }
    let mut sink = Gf2Node::new(k, d);
    for _ in 0..50 * (k + 2) {
        if sink.decode().is_some() {
            break;
        }
        sink.receive(&src.emit(&mut rng).expect("seeded source emits"));
    }
    sink.decode() == Some(payloads)
}

proptest! {
    #[test]
    fn gf2_pipeline_round_trips(k in 1usize..16, d in 1usize..32, seed in any::<u64>()) {
        prop_assert!(relay_decode_gf2(k, d, seed));
    }

    #[test]
    fn dense_pipeline_round_trips_gf256(
        k in 1usize..10,
        m in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let payloads: Vec<Vec<Gf256>> = (0..k)
            .map(|_| (0..m).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let mut src: DenseNode<Gf256> = DenseNode::new(k, m);
        for (i, p) in payloads.iter().enumerate() {
            src.seed_source(i, p);
        }
        let mut sink: DenseNode<Gf256> = DenseNode::new(k, m);
        let mut receptions = 0;
        while sink.decode().is_none() {
            sink.receive(&src.emit(&mut rng).unwrap());
            receptions += 1;
            prop_assert!(receptions < 20 * (k + 2), "too many receptions");
        }
        prop_assert_eq!(sink.decode().unwrap(), payloads);
    }

    #[test]
    fn innovation_matches_rank_growth(
        k in 1usize..12,
        seed in any::<u64>(),
        receptions in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = 8;
        let mut src = Gf2Node::new(k, d);
        for i in 0..k {
            src.seed_source(i, &Gf2Vec::random(d, &mut rng));
        }
        let mut sink = Gf2Node::new(k, d);
        for _ in 0..receptions {
            let before = sink.rank();
            let innovative = sink.receive(&src.emit(&mut rng).unwrap());
            prop_assert_eq!(innovative, sink.rank() == before + 1);
            prop_assert!(sink.rank() <= src.rank());
        }
    }

    #[test]
    fn blocking_round_trips(
        count in 1usize..40,
        token_bits in 1usize..24,
        per_block in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tokens: Vec<Gf2Vec> =
            (0..count).map(|_| Gf2Vec::random(token_bits, &mut rng)).collect();
        let blocks = group_tokens(&tokens, token_bits, per_block);
        prop_assert_eq!(blocks.len(), count.div_ceil(per_block));
        prop_assert_eq!(ungroup_tokens(&blocks, token_bits, count), tokens);
    }

    #[test]
    fn schedule_is_a_pure_function(
        seed in any::<u64>(),
        node in 0usize..64,
        round in 0usize..1000,
        count in 1usize..32,
    ) {
        let s1 = CoefficientSchedule::new(seed);
        let s2 = CoefficientSchedule::new(seed);
        let a: Vec<Mersenne61> = s1.coefficients(node, round, count);
        let b: Vec<Mersenne61> = s2.coefficients(node, round, count);
        prop_assert_eq!(&a, &b);
        // Prefixes agree: the schedule is positionally stable.
        let shorter: Vec<Mersenne61> = s1.coefficients(node, round, count.saturating_sub(1));
        prop_assert_eq!(&a[..shorter.len()], &shorter[..]);
    }

    #[test]
    fn partial_decode_is_a_sub_decode(
        k in 2usize..10,
        seed in any::<u64>(),
        receptions in 1usize..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = 6;
        let payloads: Vec<Gf2Vec> = (0..k).map(|_| Gf2Vec::random(d, &mut rng)).collect();
        let mut src = Gf2Node::new(k, d);
        for (i, p) in payloads.iter().enumerate() {
            src.seed_source(i, p);
        }
        let mut sink = Gf2Node::new(k, d);
        for _ in 0..receptions {
            sink.receive(&src.emit(&mut rng).unwrap());
        }
        // Whatever is individually decodable must equal the true payload.
        for (i, got) in sink.decode_available().iter().enumerate() {
            if let Some(p) = got {
                prop_assert_eq!(p, &payloads[i]);
            }
        }
    }
}
