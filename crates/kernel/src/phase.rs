//! Per-phase kernel timing plumbing shared by [`run_fast`](crate::cell::run_fast)
//! and the elimination cells.
//!
//! The round loop times its three sections unconditionally (four
//! `Instant::now()` calls per round — noise against thousands of row
//! operations) and, when telemetry is enabled, reports per-run phase
//! totals as `span` events: `kernel.csr`, `kernel.compose`,
//! `kernel.eliminate`, and `kernel.gather` (delivery minus elimination —
//! message copy/unpack and inbox traversal). Elimination time itself is
//! accumulated here by the cells, which wrap only their per-message
//! `insert` calls and only while [`active`] — so the disabled path adds
//! one atomic load per `deliver_all`, not per message.
//!
//! `DYNCODE_PHASE_TIME=1` remains supported as a compat alias: the first
//! fast run installs a stderr sink filtered to `kernel.*`, reproducing
//! the old per-run phase dump (now structured).

use std::cell::Cell;
use std::sync::Once;

/// Whether phase spans should be recorded (one relaxed atomic load).
#[inline]
pub fn active() -> bool {
    dyncode_obs::enabled()
}

/// Installs the `DYNCODE_PHASE_TIME` compat stderr sink (once per
/// process) if the env var is set. Called at the top of every fast run.
pub fn ensure_env_compat() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if std::env::var_os("DYNCODE_PHASE_TIME").is_some() {
            // Leaked on purpose: the sink lives for the whole process,
            // like the env var that requested it.
            dyncode_obs::install(std::sync::Arc::new(dyncode_obs::StderrSink::with_prefix(
                "kernel.",
            )));
        }
    });
}

thread_local! {
    /// Elimination nanoseconds accumulated by the current run's cells.
    static ELIM_NS: Cell<u64> = const { Cell::new(0) };
}

/// Zeroes the elimination accumulator (start of a fast run).
pub fn elim_reset() {
    ELIM_NS.with(|c| c.set(0));
}

/// Adds `ns` of elimination time (called by cells per delivered message).
pub fn elim_add(ns: u64) {
    ELIM_NS.with(|c| c.set(c.get() + ns));
}

/// Reads and zeroes the elimination accumulator (end of a fast run).
pub fn elim_take() -> u64 {
    ELIM_NS.with(|c| c.replace(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elim_accumulator_adds_and_drains() {
        elim_reset();
        elim_add(5);
        elim_add(7);
        assert_eq!(elim_take(), 12);
        assert_eq!(elim_take(), 0);
    }
}
