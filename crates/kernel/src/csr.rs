//! The CSR adjacency snapshot: the fast loop's reusable, flat view of the
//! adversary's per-round topology.
//!
//! The adversary hands the simulator a fresh [`Graph`] every round, but
//! consecutive dynamic-network topologies usually share most of their
//! edges (that observation is the whole `.dct` trace format). The
//! snapshot therefore works in edge-delta terms, reusing the
//! `dyncode_dynet::trace` flip machinery: each round the incoming graph's
//! sorted [`edge_id`] list is diffed against the previous round's, and
//!
//! * **zero flips** — every round inside a T-stable window, every
//!   repeated round of a replayed trace — keeps the existing
//!   offsets/targets arrays untouched;
//! * **any flips** trigger one O(n + m) refill of the arrays, with no
//!   heap growth after warmup (the buffers are reused).

use dyncode_dynet::graph::Graph;
use dyncode_dynet::trace::edge_id;

/// A compressed-sparse-row adjacency snapshot with delta-driven reuse.
#[derive(Debug)]
pub struct CsrTopology {
    n: usize,
    /// Sorted edge ids of the current snapshot (the diff base).
    ids: Vec<u64>,
    /// Reused buffer for the incoming round's edge ids.
    scratch: Vec<u64>,
    /// `offsets[u]..offsets[u + 1]` indexes `targets` with `u`'s
    /// neighbors, ascending.
    offsets: Vec<u32>,
    targets: Vec<u32>,
    rounds_reused: u64,
    rounds_rebuilt: u64,
}

/// Number of elements in the symmetric difference of two sorted,
/// duplicate-free id lists — the flip count of `dyncode_dynet::trace`'s
/// delta encoding, computed without materializing the flip list.
fn flip_count(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut flips) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                flips += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                flips += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    flips + (a.len() - i) + (b.len() - j)
}

impl CsrTopology {
    /// An empty snapshot for graphs on `n` nodes.
    pub fn new(n: usize) -> Self {
        CsrTopology {
            n,
            ids: Vec::new(),
            scratch: Vec::new(),
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            rounds_reused: 0,
            rounds_rebuilt: 0,
        }
    }

    /// Loads the round's topology: diffs `g`'s edge ids against the
    /// current snapshot and refills the CSR arrays only when edges
    /// actually flipped.
    ///
    /// # Panics
    /// Panics if `g` is not on `n` nodes.
    pub fn load(&mut self, g: &Graph) {
        assert_eq!(g.num_nodes(), self.n, "graph size mismatch");
        // Gather sorted edge ids: iterating the higher endpoint ascending
        // (and its sorted lower neighbors) emits ids in increasing order.
        self.scratch.clear();
        for hi in 0..self.n {
            for &lo in g.neighbors(hi) {
                if lo < hi {
                    self.scratch.push(edge_id(lo, hi));
                }
            }
        }
        debug_assert!(self.scratch.windows(2).all(|w| w[0] < w[1]));
        if flip_count(&self.ids, &self.scratch) == 0 && self.rounds_rebuilt > 0 {
            self.rounds_reused += 1;
            return;
        }
        std::mem::swap(&mut self.ids, &mut self.scratch);
        self.targets.clear();
        self.offsets[0] = 0;
        for u in 0..self.n {
            for &v in g.neighbors(u) {
                self.targets.push(v as u32);
            }
            self.offsets[u + 1] = self.targets.len() as u32;
        }
        self.rounds_rebuilt += 1;
    }

    /// Overwrites the snapshot with an externally-planned **directed**
    /// adjacency (CSR offsets + targets) — the delivery layer's per-round
    /// delivered-sender plan, where `neighbors(u)` becomes "the senders
    /// receiver `u` hears". No delta reuse (a plan changes every round),
    /// and the delta base is invalidated so a later [`CsrTopology::load`]
    /// rebuilds; keep plan snapshots in their own instance when the
    /// adversary snapshot's reuse counter matters.
    ///
    /// # Panics
    /// Panics if `offsets` is not an (n + 1)-row CSR bound list.
    pub fn load_plan(&mut self, offsets: &[u32], targets: &[u32]) {
        assert_eq!(
            offsets.len(),
            self.n + 1,
            "plan offsets must have n + 1 rows"
        );
        self.ids.clear();
        self.offsets.copy_from_slice(offsets);
        self.targets.clear();
        self.targets.extend_from_slice(targets);
        self.rounds_rebuilt += 1;
    }

    /// The neighbors of `u` in the current snapshot, ascending.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges in the current snapshot.
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// How many `load` calls were served without a rebuild (the T-stable
    /// / replay win), for instrumentation.
    pub fn rounds_reused(&self) -> u64 {
        self.rounds_reused
    }
}

impl dyncode_delivery::NeighborView for CsrTopology {
    fn for_each_neighbor(&self, u: usize, visit: &mut dyn FnMut(usize)) {
        for &v in self.neighbors(u) {
            visit(v as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncode_dynet::adversaries::ShuffledPathAdversary;
    use dyncode_dynet::adversary::{Adversary, KnowledgeView, TStable};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_matches(csr: &CsrTopology, g: &Graph) {
        assert_eq!(csr.num_edges(), g.num_edges());
        for u in 0..g.num_nodes() {
            let want: Vec<u32> = g.neighbors(u).iter().map(|&v| v as u32).collect();
            assert_eq!(csr.neighbors(u), &want[..], "node {u}");
        }
    }

    #[test]
    fn snapshot_tracks_changing_topologies() {
        let mut adv = ShuffledPathAdversary;
        let view = KnowledgeView::blank(11, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut csr = CsrTopology::new(11);
        for round in 0..12 {
            let g = adv.topology(round, &view, &mut rng);
            csr.load(&g);
            assert_matches(&csr, &g);
        }
    }

    #[test]
    fn unchanged_rounds_are_reused() {
        let mut adv = TStable::new(ShuffledPathAdversary, 4);
        let view = KnowledgeView::blank(9, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut csr = CsrTopology::new(9);
        for round in 0..12 {
            let g = adv.topology(round, &view, &mut rng);
            csr.load(&g);
            assert_matches(&csr, &g);
        }
        // 12 rounds at T = 4: at most 3 rebuilds (paths may even repeat).
        assert!(
            csr.rounds_reused() >= 8,
            "expected ≥ 8 delta-free rounds, got {}",
            csr.rounds_reused()
        );
    }

    #[test]
    fn flip_count_matches_symm_diff() {
        use dyncode_dynet::trace::symm_diff;
        let a = vec![1u64, 3, 5, 9];
        let b = vec![3u64, 4, 9, 11];
        assert_eq!(flip_count(&a, &b), symm_diff(&a, &b).len());
        assert_eq!(flip_count(&a, &a), 0);
        assert_eq!(flip_count(&[], &a), 4);
    }
}
