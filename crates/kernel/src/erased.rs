//! [`ErasedCell`]: any `Box<dyn ErasedProtocol>` as a [`FastCell`] — the
//! adapter that closes the fast kernel's eligibility table over the
//! stage-machine protocols (greedy/priority/random forwarding,
//! `naive-coded`, `centralized`).
//!
//! These families are not elimination-bound: their per-round cost is a
//! schedule decision plus small token moves, so what the fast loop buys
//! them is its round *infrastructure* — the delta-reused CSR snapshot and
//! a persistent message/inbox arena instead of the reference loop's fresh
//! `Vec<Option<M>>` and per-node inbox `Vec` every round — not a
//! reimplementation of their state machines. The adapter forwards every
//! protocol call with the same arguments in the same order as
//! `simulator::run` (compose per node ascending, deliver for **every**
//! node from ascending neighbors — some protocols advance state on an
//! empty inbox — then the round-end hook), so no wrapper path touches the
//! RNG and runs are bit-identical by construction.

use crate::cell::FastCell;
use crate::csr::CsrTopology;
use dyncode_dynet::adversary::KnowledgeView;
use dyncode_dynet::simulator::{ErasedMessage, ErasedProtocol};
use rand::rngs::StdRng;

/// An erased protocol running on the fast backend.
pub struct ErasedCell {
    protocol: Box<dyn ErasedProtocol>,
    /// This round's composed broadcasts, indexed by node.
    msgs: Vec<Option<ErasedMessage>>,
    /// Reused inbox scratch (`ErasedMessage` clones are refcount bumps).
    inbox: Vec<ErasedMessage>,
}

impl ErasedCell {
    /// Wraps an erased protocol (fully built and seeded).
    pub fn new(protocol: Box<dyn ErasedProtocol>) -> Self {
        let n = protocol.num_nodes();
        ErasedCell {
            protocol,
            msgs: vec![None; n],
            inbox: Vec::new(),
        }
    }
}

impl FastCell for ErasedCell {
    fn num_nodes(&self) -> usize {
        self.protocol.num_nodes()
    }

    fn spoke(&self, node: usize) -> bool {
        self.msgs[node].is_some()
    }

    fn compose_all(
        &mut self,
        round: usize,
        rng: &mut StdRng,
        bit_limit: Option<u64>,
    ) -> (u64, u64) {
        let mut round_bits = 0u64;
        let mut round_max = 0u64;
        for u in 0..self.msgs.len() {
            let msg = self.protocol.compose_erased(u, round, rng);
            if let Some(m) = &msg {
                let bits = m.bits();
                if let Some(limit) = bit_limit {
                    assert!(
                        bits <= limit,
                        "node {u} exceeded the message budget at round {round}: \
                         {bits} > {limit} bits"
                    );
                }
                round_bits += bits;
                round_max = round_max.max(bits);
            }
            self.msgs[u] = msg;
        }
        (round_bits, round_max)
    }

    fn deliver_all(&mut self, topo: &CsrTopology, round: usize, rng: &mut StdRng) {
        for u in 0..self.msgs.len() {
            self.inbox.clear();
            for &v in topo.neighbors(u) {
                if let Some(m) = &self.msgs[v as usize] {
                    self.inbox.push(m.clone());
                }
            }
            // Deliver even when the inbox is empty: the reference loop
            // calls `deliver` for every node, and some protocols (e.g.
            // random-forward's boundary refresh) mutate state there.
            self.protocol.deliver_erased(u, &self.inbox, round, rng);
        }
    }

    fn round_end(&mut self, round: usize, rng: &mut StdRng) {
        self.protocol.round_end_erased(round, rng);
    }

    fn all_done(&self) -> bool {
        (0..self.protocol.num_nodes()).all(|u| self.protocol.node_done(u))
    }

    fn view(&self) -> KnowledgeView {
        self.protocol.view()
    }

    fn history_stats(&self) -> (usize, usize, usize, usize) {
        // Derived from the view exactly as the reference loop derives a
        // history row.
        let v = self.protocol.view();
        let min_dim = v.dims.iter().copied().min().unwrap_or(0);
        let max_dim = v.dims.iter().copied().max().unwrap_or(0);
        let total_tokens = v.tokens.iter().map(|s| s.len()).sum();
        let done = v.done.iter().filter(|&&d| d).count();
        (min_dim, max_dim, total_tokens, done)
    }

    fn fully_disseminated(&self) -> bool {
        let k = self.protocol.num_tokens();
        self.protocol.view().tokens.iter().all(|s| s.len() == k)
    }
}
