//! The dense-field RLNC cell: per-node coding state over an arbitrary
//! [`Field`], with packed message arenas — the fast backend for the
//! prime fields, `field-broadcast(gf257|m61)` (randomized mode).
//! GF(2^8) gets the dedicated bit-planar
//! [`Gf256Cell`](crate::gf256cell::Gf256Cell) instead; this cell still
//! supports it (the tests pin the mirror property on all three fields).
//!
//! The reference protocol keeps one `Subspace<F>` per node and allocates a
//! `DensePacket<F>` (plus an `Rc` and an inbox `Vec`) per message per
//! neighbor per round. This cell keeps the same reduced-row-echelon bases
//! in per-node row arenas that grow one row per innovative insert, and
//! stores every composed packet bit-packed at ⌈lg q⌉ bits per symbol in
//! one flat `u64` arena ([`dyncode_gf::pack`]'s chunked-LE layout), so a
//! round performs zero allocations after warmup. Three further wins over
//! the reference path:
//!
//! * row operations go through [`Field::axpy`], which GF(2^8) overrides
//!   with a hoisted log/antilog table form;
//! * a node whose span is already full (rank k) skips its whole inbox —
//!   no insert against a full basis can be innovative or change state, and
//!   inserts draw no coins, so the skip is bit-invisible;
//! * prime-field reduction is division-free (`dyncode_gf::gfp`).
//!
//! **Equivalence.** The insert replays `Subspace::insert` operation for
//! operation (reduce in pivot order, leading-index scan, pivot
//! normalization, back-elimination, pivot-sorted insert), and compose
//! draws exactly one `F::random` per basis row in pivot order — the draw
//! sequence of `vector::random_combination` — so runs are bit-identical
//! to the reference `FieldBroadcast<F>` under the kernel contract.

use crate::cell::FastCell;
use crate::csr::CsrTopology;
use dyncode_dynet::adversary::KnowledgeView;
use dyncode_dynet::bitset::BitSet;
use dyncode_gf::{pack, vector, Field};
use rand::rngs::StdRng;

/// One node's basis: a slot-major row arena plus the pivot-sorted
/// indirection. Slots are assigned in insertion order and never move.
#[derive(Clone, Debug)]
struct NodeBasis<F> {
    /// Row slot `s` lives at `rows[s·ambient .. (s+1)·ambient]`; grows one
    /// row per innovative insert (total memory is O(Σ ranks), not n·k).
    rows: Vec<F>,
    /// Basis position (pivot-ascending) → row slot.
    order: Vec<u32>,
    /// Basis position → pivot column, strictly increasing.
    pivots: Vec<u32>,
}

/// The arena-backed dense-field coding state for all n nodes.
pub struct DenseCell<F: Field> {
    n: usize,
    k: usize,
    /// Row width in symbols: k coefficients + payload symbols.
    ambient: usize,
    /// Packed message width in `u64` words.
    wpm: usize,
    nodes: Vec<NodeBasis<F>>,
    /// Per node: pivots below k (the coefficient-projection rank).
    coeff_rank: Vec<u32>,
    /// Message arena: node `u`'s packed broadcast at
    /// `msgs[u·wpm .. (u+1)·wpm]`, valid iff `has_msg[u]`.
    msgs: Vec<u64>,
    has_msg: Vec<bool>,
    /// Delivery-time symbol arena: each sender's message is unpacked here
    /// once per round instead of once per receiver (a node of degree d
    /// would otherwise decode the same packet d times).
    unpacked: Vec<F>,
    /// Compose/unpack buffer, `ambient` symbols.
    scratch: Vec<F>,
}

impl<F: Field> DenseCell<F> {
    /// A fresh cell: n nodes, k coded indices, `payload_len`-symbol
    /// payloads. Seed the sources with [`DenseCell::seed_source`] before
    /// running.
    pub fn new(n: usize, k: usize, payload_len: usize) -> Self {
        let ambient = k + payload_len;
        let wpm = pack::packed_words(ambient, F::bits_per_symbol()).max(1);
        DenseCell {
            n,
            k,
            ambient,
            wpm,
            nodes: vec![
                NodeBasis {
                    rows: Vec::new(),
                    order: Vec::new(),
                    pivots: Vec::new(),
                };
                n
            ],
            coeff_rank: vec![0; n],
            msgs: vec![0; n * wpm],
            has_msg: vec![false; n],
            unpacked: vec![F::ZERO; n * ambient],
            scratch: vec![F::ZERO; ambient],
        }
    }

    /// Seeds `node` with source index `index` and its payload — the arena
    /// analogue of `DenseNode::seed_source`.
    ///
    /// # Panics
    /// Panics if the payload width disagrees or `index >= k`.
    pub fn seed_source(&mut self, node: usize, index: usize, payload: &[F]) {
        assert!(index < self.k, "source index out of range");
        assert_eq!(
            payload.len(),
            self.ambient - self.k,
            "payload width mismatch"
        );
        let mut v = std::mem::take(&mut self.scratch);
        v.fill(F::ZERO);
        v[index] = F::ONE;
        v[self.k..].copy_from_slice(payload);
        self.insert(node, &mut v);
        self.scratch = v;
    }

    /// The basis dimension of `node`.
    pub fn rank(&self, node: usize) -> usize {
        self.nodes[node].order.len()
    }

    /// The coefficient-projection rank of `node`.
    pub fn coefficient_rank(&self, node: usize) -> usize {
        self.coeff_rank[node] as usize
    }

    /// Basis row `r` (pivot order) of `node` — test and introspection
    /// surface, not the hot path.
    pub fn basis_row(&self, node: usize, r: usize) -> Vec<F> {
        let st = &self.nodes[node];
        let slot = st.order[r] as usize;
        st.rows[slot * self.ambient..(slot + 1) * self.ambient].to_vec()
    }

    /// Inserts `v` (an `ambient`-symbol packet) into `node`'s basis;
    /// returns `true` iff innovative. `v` is clobbered (it becomes the
    /// normalized new row). Identical math to `Subspace::insert`.
    fn insert(&mut self, node: usize, v: &mut [F]) -> bool {
        let (k, ambient) = (self.k, self.ambient);
        let st = &mut self.nodes[node];
        // Reduce against the basis in pivot order. Every stored row is
        // zero before its pivot column (the pivot is its leading index,
        // an invariant back-elimination preserves: a new pivot only ever
        // rewrites columns at or after itself in rows with smaller
        // pivots), so each axpy starts at the pivot — the reference
        // `Subspace` pays full-length row ops instead.
        for r in 0..st.order.len() {
            let p = st.pivots[r] as usize;
            let c = v[p];
            if !c.is_zero() {
                let slot = st.order[r] as usize;
                F::axpy(
                    &mut v[p..],
                    &st.rows[slot * ambient + p..(slot + 1) * ambient],
                    c.neg(),
                );
            }
        }
        let Some(p) = vector::leading_index(v) else {
            return false;
        };
        // Normalize the new pivot to 1 (`v` is zero before `p`).
        let inv = v[p].inv().expect("leading entry nonzero");
        vector::scale(&mut v[p..], inv);
        // Back-eliminate the new pivot column from existing rows; `v` is
        // zero before `p`, so only entries from `p` on can change.
        for r in 0..st.order.len() {
            let slot = st.order[r] as usize;
            let row = &mut st.rows[slot * ambient + p..(slot + 1) * ambient];
            let c = row[0];
            if !c.is_zero() {
                F::axpy(row, &v[p..], c.neg());
            }
        }
        // Insert keeping pivots sorted; the row data takes the next slot.
        let nrank = st.order.len();
        assert!(
            nrank < k,
            "rank overflow: packets must lie in the k-dimensional source span"
        );
        let idx = st.pivots.partition_point(|&q| (q as usize) < p);
        st.order.insert(idx, nrank as u32);
        st.pivots.insert(idx, p as u32);
        st.rows.extend_from_slice(v);
        if p < k {
            self.coeff_rank[node] += 1;
        }
        true
    }

    fn node_done(&self, node: usize) -> bool {
        self.coeff_rank[node] as usize == self.k
    }
}

impl<F: Field> FastCell for DenseCell<F> {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn spoke(&self, node: usize) -> bool {
        self.has_msg[node]
    }

    fn compose_all(
        &mut self,
        round: usize,
        rng: &mut StdRng,
        bit_limit: Option<u64>,
    ) -> (u64, u64) {
        let (ambient, wpm) = (self.ambient, self.wpm);
        let bits = ambient as u64 * F::bits_per_symbol() as u64;
        let mut round_bits = 0u64;
        let mut round_max = 0u64;
        let mut msg = std::mem::take(&mut self.scratch);
        for u in 0..self.n {
            let st = &self.nodes[u];
            let nrank = st.order.len();
            if nrank == 0 {
                // Nothing received: stay silent and draw no coefficients,
                // exactly like the reference emit.
                self.has_msg[u] = false;
                continue;
            }
            msg.fill(F::ZERO);
            for r in 0..nrank {
                // One coefficient per basis row in pivot order — the draw
                // sequence of `random_combination`; the axpy itself skips
                // zero coefficients, as `scale_add` does, and starts at
                // the row's pivot (rows are zero before their pivot).
                let c = F::random(rng);
                if !c.is_zero() {
                    let slot = st.order[r] as usize;
                    let p = st.pivots[r] as usize;
                    F::axpy(
                        &mut msg[p..],
                        &st.rows[slot * ambient + p..(slot + 1) * ambient],
                        c,
                    );
                }
            }
            if let Some(limit) = bit_limit {
                assert!(
                    bits <= limit,
                    "node {u} exceeded the message budget at round {round}: \
                     {bits} > {limit} bits"
                );
            }
            round_bits += bits;
            round_max = round_max.max(bits);
            pack::pack(&msg, &mut self.msgs[u * wpm..(u + 1) * wpm]);
            self.has_msg[u] = true;
        }
        self.scratch = msg;
        (round_bits, round_max)
    }

    fn deliver_all(&mut self, topo: &CsrTopology, _round: usize, _rng: &mut StdRng) {
        let (wpm, ambient) = (self.wpm, self.ambient);
        // Decode each sender's packed message once; every receiver then
        // starts from a plain symbol copy.
        let mut unpacked = std::mem::take(&mut self.unpacked);
        for v in 0..self.n {
            if self.has_msg[v] {
                pack::unpack(
                    &self.msgs[v * wpm..(v + 1) * wpm],
                    &mut unpacked[v * ambient..(v + 1) * ambient],
                );
            }
        }
        let timing = crate::phase::active();
        let mut scratch = std::mem::take(&mut self.scratch);
        for u in 0..self.n {
            // Saturation shortcut: at rank k the node holds the full
            // source span, so no insert can be innovative or change any
            // row (reducing an in-span vector yields zero), and inserts
            // draw no coins — skipping the inbox is bit-invisible.
            if self.nodes[u].order.len() == self.k {
                continue;
            }
            for &v in topo.neighbors(u) {
                let v = v as usize;
                if self.has_msg[v] {
                    scratch.copy_from_slice(&unpacked[v * ambient..(v + 1) * ambient]);
                    if timing {
                        let t = std::time::Instant::now();
                        self.insert(u, &mut scratch);
                        crate::phase::elim_add(t.elapsed().as_nanos() as u64);
                    } else {
                        self.insert(u, &mut scratch);
                    }
                }
            }
        }
        self.scratch = scratch;
        self.unpacked = unpacked;
    }

    fn all_done(&self) -> bool {
        (0..self.n).all(|u| self.node_done(u))
    }

    fn view(&self) -> KnowledgeView {
        // Mirror of `FieldBroadcast::view`: all-or-nothing decodability.
        let tokens: Vec<BitSet> = (0..self.n)
            .map(|u| {
                let mut s = BitSet::new(self.k);
                if self.node_done(u) {
                    for i in 0..self.k {
                        s.insert(i);
                    }
                }
                s
            })
            .collect();
        KnowledgeView {
            dims: (0..self.n).map(|u| self.rank(u)).collect(),
            done: (0..self.n).map(|u| self.node_done(u)).collect(),
            tokens,
        }
    }

    fn history_stats(&self) -> (usize, usize, usize, usize) {
        let min_dim = (0..self.n).map(|u| self.rank(u)).min().unwrap_or(0);
        let max_dim = (0..self.n).map(|u| self.rank(u)).max().unwrap_or(0);
        let done = (0..self.n).filter(|&u| self.node_done(u)).count();
        (min_dim, max_dim, self.k * done, done)
    }

    fn fully_disseminated(&self) -> bool {
        self.all_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncode_gf::{Gf256, Gf257, Mersenne61, Subspace};
    use rand::{rngs::StdRng, SeedableRng};

    /// Mirror of the reference basis: every insert must agree with
    /// `Subspace::insert` on innovation, rank, pivots, and row content.
    /// Inputs are random combinations of k source packets — the only
    /// vectors a run can deliver.
    fn insert_agrees_with_subspace<F: Field>(seed: u64) {
        let (k, d) = (5, 7);
        let mut rng = StdRng::seed_from_u64(seed);
        let sources: Vec<Vec<F>> = (0..k)
            .map(|i| {
                let mut v = vec![F::ZERO; k + d];
                v[i] = F::ONE;
                for s in v[k..].iter_mut() {
                    *s = F::random(&mut rng);
                }
                v
            })
            .collect();
        let mut cell: DenseCell<F> = DenseCell::new(1, k, d);
        let mut reference: Subspace<F> = Subspace::new(k + d);
        for _ in 0..60 {
            let mut v = vec![F::ZERO; k + d];
            for s in &sources {
                F::axpy(&mut v, s, F::random(&mut rng));
            }
            let fast = cell.insert(0, &mut v.clone());
            let slow = reference.insert(v);
            assert_eq!(fast, slow);
            assert_eq!(cell.rank(0), reference.dim());
            for (r, row) in reference.basis().iter().enumerate() {
                assert_eq!(&cell.basis_row(0, r), row, "row {r}");
            }
            assert_eq!(cell.coefficient_rank(0), reference.prefix_rank(k));
        }
    }

    #[test]
    fn insert_mirrors_subspace_over_every_dense_field() {
        insert_agrees_with_subspace::<Gf256>(11);
        insert_agrees_with_subspace::<Gf257>(12);
        insert_agrees_with_subspace::<Mersenne61>(13);
    }

    #[test]
    fn seeded_sources_make_node_decodable() {
        let (k, d) = (4, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let payloads: Vec<Vec<Gf256>> = (0..k)
            .map(|_| (0..d).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let mut cell: DenseCell<Gf256> = DenseCell::new(2, k, d);
        for (i, p) in payloads.iter().enumerate() {
            cell.seed_source(0, i, p);
        }
        assert_eq!(cell.rank(0), k);
        assert_eq!(cell.coefficient_rank(0), k);
        assert!(!cell.all_done(), "node 1 has nothing yet");
        let v = cell.view();
        assert_eq!(v.dims, vec![k, 0]);
        assert_eq!(v.tokens[0].len(), k, "done view is all-or-nothing");
        assert!(v.tokens[1].is_empty());
        assert_eq!(cell.history_stats(), (0, k, k, 1));
    }

    #[test]
    fn zero_packet_is_never_innovative() {
        let mut cell: DenseCell<Gf257> = DenseCell::new(1, 3, 2);
        let mut zero = vec![Gf257::ZERO; 5];
        assert!(!cell.insert(0, &mut zero));
        assert_eq!(cell.rank(0), 0);
    }
}
