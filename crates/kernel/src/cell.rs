//! The fast round loop: [`FastCell`] is the arena-backed counterpart of
//! `dyncode_dynet::simulator::Protocol`, batched per round instead of per
//! node, and [`run_fast`] is the counterpart of `simulator::run`.
//!
//! The loop replays the reference round structure *exactly* — adversary
//! view, topology validation, neighbor-blind compose, anonymous delivery,
//! end-of-round hook, history row — and draws from the same two RNG
//! streams (`seed` for the protocol, [`adversary_rng`] for the
//! adversary), which is what makes the fast `RunResult` bit-identical to
//! the reference one for every eligible cell (the contract
//! `tests/kernel_equivalence.rs` locks).

use crate::csr::CsrTopology;
use dyncode_dynet::adversary::{Adversary, KnowledgeView};
use dyncode_dynet::simulator::{adversary_rng, RoundRecord, RunResult, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One protocol family running on the fast backend.
///
/// Unlike `Protocol`, the surface is *batched*: one `compose_all` and one
/// `deliver_all` per round over internal arenas, so the round loop does
/// no per-node allocation. Implementations must preserve the reference
/// semantics: compose per node in ascending node order (drawing exactly
/// the coins the reference protocol draws), deliver per node from
/// ascending neighbors, and report the same views and statistics.
pub trait FastCell {
    /// Number of nodes n.
    fn num_nodes(&self) -> usize;

    /// Composes every node's broadcast for `round` into the message
    /// arena, enforcing `bit_limit` per message when set. Returns
    /// `(bits broadcast this round, largest message this round)`.
    fn compose_all(&mut self, round: usize, rng: &mut StdRng, bit_limit: Option<u64>)
        -> (u64, u64);

    /// Delivers the composed messages along `topo` (per node, ascending
    /// neighbor order — the reference inbox order).
    fn deliver_all(&mut self, topo: &CsrTopology, round: usize, rng: &mut StdRng);

    /// Did `node` compose a message this round? Valid between
    /// `compose_all` and `deliver_all`; must equal
    /// `compose(node) == Some(_)` in the reference protocol, because the
    /// delivery layer draws its radio/erasure coins per *speaking* node —
    /// a mismatch would desynchronize the private delivery RNG stream
    /// between the two backends.
    fn spoke(&self, node: usize) -> bool;

    /// Global end-of-round hook (phase counters); defaults to a no-op.
    fn round_end(&mut self, _round: usize, _rng: &mut StdRng) {}

    /// Have all nodes locally terminated?
    fn all_done(&self) -> bool;

    /// The adversary/statistics view — must equal the reference
    /// protocol's `view()` element for element (adaptive adversaries
    /// branch on it).
    fn view(&self) -> KnowledgeView;

    /// `(min_dim, max_dim, total_tokens, done)` of the current state, for
    /// a history row (the reference derives these from `view()`).
    fn history_stats(&self) -> (usize, usize, usize, usize);

    /// Does every node know every token (the dissemination
    /// postcondition asserted after a completed run)?
    fn fully_disseminated(&self) -> bool;
}

/// Runs `cell` against `adversary` from `seed` until every node is done
/// or `config.max_rounds` elapse — `simulator::run`, specialized to the
/// arena-backed cells.
///
/// # Panics
/// Panics if the adversary produces a disconnected or wrongly-sized
/// graph, or (in strict mode) if a message exceeds the bit limit — the
/// same conditions, with the same messages, as the reference loop.
pub fn run_fast(
    cell: &mut dyn FastCell,
    adversary: &mut dyn Adversary,
    config: &SimConfig,
    seed: u64,
) -> RunResult {
    let n = cell.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adv_rng = adversary_rng(seed);
    let mut csr = CsrTopology::new(n);
    // Non-reliable delivery: the planner draws the same coins over the
    // same topology view as the reference loop, and the resulting
    // directed plan is materialized into its own CSR snapshot so the
    // adversary snapshot's delta reuse is untouched.
    let mut delivery = config.delivery.model(seed);
    let mut masked = delivery.as_ref().map(|_| CsrTopology::new(n));
    let mut speaks: Vec<bool> = Vec::new();
    let mut total_bits = 0u64;
    let mut max_message_bits = 0u64;
    let mut history = Vec::new();

    crate::phase::ensure_env_compat();
    crate::phase::elim_reset();
    let (mut t_view, mut t_compose, mut t_deliver) = (
        std::time::Duration::ZERO,
        std::time::Duration::ZERO,
        std::time::Duration::ZERO,
    );
    let mut round = 0usize;
    let mut completed = cell.all_done();
    while !completed && round < config.max_rounds {
        let t0 = std::time::Instant::now();
        // 1. Adversary commits a topology from the current state.
        let view = cell.view();
        let graph = adversary.topology(round, &view, &mut adv_rng);
        assert_eq!(
            graph.num_nodes(),
            n,
            "adversary {} produced a graph of the wrong size",
            adversary.name()
        );
        assert!(
            graph.is_connected(),
            "adversary {} produced a disconnected graph at round {round}",
            adversary.name()
        );
        csr.load(&graph);

        let t1 = std::time::Instant::now();
        // 2. Nodes speak, neighbor-blind.
        let (round_bits, round_max) = cell.compose_all(round, &mut rng, config.bit_limit);
        total_bits += round_bits;
        max_message_bits = max_message_bits.max(round_max);

        let t2 = std::time::Instant::now();
        // 3. Anonymous broadcast delivery: along the committed topology,
        // or along the delivery model's per-round masked plan.
        match (&mut delivery, &mut masked) {
            (Some(model), Some(plan)) => {
                speaks.clear();
                speaks.extend((0..n).map(|u| cell.spoke(u)));
                model.plan_round(&speaks, &csr);
                plan.load_plan(model.offsets(), model.senders());
                cell.deliver_all(plan, round, &mut rng);
            }
            _ => cell.deliver_all(&csr, round, &mut rng),
        }
        cell.round_end(round, &mut rng);
        let t3 = std::time::Instant::now();
        t_view += t1 - t0;
        t_compose += t2 - t1;
        t_deliver += t3 - t2;

        if config.record_history {
            let (min_dim, max_dim, total_tokens, done) = cell.history_stats();
            history.push(RoundRecord {
                round,
                edges: graph.num_edges(),
                bits: round_bits,
                min_dim,
                max_dim,
                total_tokens,
                done,
            });
        }

        round += 1;
        completed = cell.all_done();
    }
    // Per-run phase totals as aggregate span events. `kernel.eliminate`
    // is what the cells accumulated around their `insert` calls;
    // `kernel.gather` is the rest of delivery (copy/unpack + inbox walk).
    let elim_ns = crate::phase::elim_take();
    if crate::phase::active() {
        let fields = |extra: Vec<(String, dyncode_obs::Value)>| {
            let mut f = vec![
                ("n".to_string(), dyncode_obs::Value::from(n)),
                ("rounds".to_string(), dyncode_obs::Value::from(round)),
            ];
            f.extend(extra);
            f
        };
        let deliver_ns = t_deliver.as_nanos() as u64;
        for ev in [
            dyncode_obs::Event::span_total("kernel.csr", t_view.as_nanos() as u64, fields(vec![])),
            dyncode_obs::Event::span_total(
                "kernel.compose",
                t_compose.as_nanos() as u64,
                fields(vec![]),
            ),
            dyncode_obs::Event::span_total(
                "kernel.gather",
                deliver_ns.saturating_sub(elim_ns),
                fields(vec![]),
            ),
            dyncode_obs::Event::span_total("kernel.eliminate", elim_ns, fields(vec![])),
        ] {
            dyncode_obs::emit(&ev);
        }
    }

    RunResult {
        rounds: round,
        completed,
        total_bits,
        max_message_bits,
        adversary: adversary.name(),
        history,
    }
}
