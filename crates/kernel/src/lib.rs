//! # dyncode-kernel
//!
//! The arena-backed fast-path execution backend for the dominant protocol
//! families, sitting *below* `dyncode-core` in the crate graph: it knows
//! nothing about `ProtocolSpec`s or `Instance`s — `core::runner` builds a
//! [`FastCell`] from a spec and hands it to [`run_fast`].
//!
//! The reference simulator (`dyncode_dynet::simulator::run`) is
//! allocation-bound at large n: a fresh `Vec<Option<Message>>` per round,
//! a payload clone per neighbor, and a per-node inbox `Vec` per round.
//! This crate replaces those with six reusable structures:
//!
//! * [`CsrTopology`] — a flat offsets/targets adjacency snapshot, rebuilt
//!   from the adversary's edge deltas (the `dyncode_dynet::trace` flip
//!   machinery): a round whose edge set did not change — every round
//!   inside a T-stable window — costs one O(m) diff walk and no rebuild.
//! * [`Gf2Cell`] — per-node GF(2) RLNC state as one word-packed row
//!   arena, with incremental Gaussian elimination running directly on
//!   `u64` limb slices (`dyncode_gf::bits::limb_xor` and friends) instead
//!   of per-packet `Vec` clones.
//! * [`Gf256Cell`] — `field-broadcast(gf256)` with *bit-planar* rows
//!   (plane j holds bit j of every symbol, 64 symbols per word), turning
//!   constant-multiply row ops into batched word XORs, plus rank-k
//!   saturation shortcuts on both compose and delivery.
//! * [`DenseCell`] — the dense-field analogue for
//!   `field-broadcast(gf257|m61)`: per-node bases in lazily grown
//!   row arenas, fast-reduction row ops via `Field::axpy`,
//!   packets crossing the arena packed into chunked-LE `u64` words
//!   (`dyncode_gf::pack`), and the rank-k saturation shortcut.
//! * [`ForwardCell`] — the knowledge-based forwarding schedules with a
//!   flat per-round message arena instead of per-node `Vec<usize>`
//!   messages and inbox clones.
//! * [`ErasedCell`] — any erased registry protocol on the fast loop's
//!   round infrastructure, closing the eligibility table over the
//!   stage-machine families (greedy/priority/random forwarding,
//!   `naive-coded`, `centralized`).
//!
//! **Equivalence contract.** For every eligible cell, [`run_fast`]
//! produces a `RunResult` bit-identical to the reference simulator's —
//! rounds, bit accounting, adversary schedule, and per-round history.
//! This holds because the fast loop replays the reference loop's event
//! order exactly: the adversary sees the same
//! [`KnowledgeView`](dyncode_dynet::adversary::KnowledgeView) each
//! round, protocol coins are
//! drawn in the same order (one `bool` per basis row per compose for the
//! coding cells, none for forwarding), and deliveries apply per node in
//! ascending neighbor order. `tests/kernel_equivalence.rs` locks the
//! contract across the eligible-spec × adversary × seed matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod csr;
pub mod densecell;
pub mod erased;
pub mod forward;
pub mod gf256cell;
pub mod gf2cell;
pub mod phase;
pub mod quorumcell;

pub use cell::{run_fast, FastCell};
pub use csr::CsrTopology;
pub use densecell::DenseCell;
pub use erased::ErasedCell;
pub use forward::ForwardCell;
pub use gf256cell::Gf256Cell;
pub use gf2cell::{Gf2Cell, Gf2ViewMode};
pub use quorumcell::QuorumCell;

use std::fmt;

/// Which execution backend a run uses — threaded through
/// `core::runner::run_spec_kernel`, the engine's `kernel =` campaign key,
/// and the bench CLI's `--kernel` flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Kernel {
    /// The reference simulator (`dyncode_dynet::simulator::run`), for
    /// every spec. The default: committed baselines are reference runs.
    #[default]
    Reference,
    /// The arena-backed fast path. Rejected (an error naming the
    /// eligible families) on a spec outside them — use [`Kernel::Auto`]
    /// to fall back instead.
    Fast,
    /// Fast for eligible specs, Reference otherwise.
    Auto,
}

impl Kernel {
    /// The spec-text name (`reference` | `fast` | `auto`).
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Reference => "reference",
            Kernel::Fast => "fast",
            Kernel::Auto => "auto",
        }
    }

    /// Parses a spec-text name; unknown names enumerate the valid ones.
    pub fn parse(s: &str) -> Result<Kernel, String> {
        match s.trim() {
            "reference" => Ok(Kernel::Reference),
            "fast" => Ok(Kernel::Fast),
            "auto" => Ok(Kernel::Auto),
            other => Err(format!(
                "unknown kernel {other:?}; valid kernels: reference, fast, auto"
            )),
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_round_trip() {
        for k in [Kernel::Reference, Kernel::Fast, Kernel::Auto] {
            assert_eq!(Kernel::parse(k.name()).unwrap(), k);
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(Kernel::default(), Kernel::Reference);
        let err = Kernel::parse("turbo").unwrap_err();
        assert!(err.contains("valid kernels"), "{err}");
    }
}
