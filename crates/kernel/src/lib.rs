//! # dyncode-kernel
//!
//! The arena-backed fast-path execution backend for the dominant protocol
//! families, sitting *below* `dyncode-core` in the crate graph: it knows
//! nothing about `ProtocolSpec`s or `Instance`s — `core::runner` builds a
//! [`FastCell`] from a spec and hands it to [`run_fast`].
//!
//! The reference simulator (`dyncode_dynet::simulator::run`) is
//! allocation-bound at large n: a fresh `Vec<Option<Message>>` per round,
//! a payload clone per neighbor, and a per-node inbox `Vec` per round.
//! This crate replaces those with three reusable structures:
//!
//! * [`CsrTopology`] — a flat offsets/targets adjacency snapshot, rebuilt
//!   from the adversary's edge deltas (the `dyncode_dynet::trace` flip
//!   machinery): a round whose edge set did not change — every round
//!   inside a T-stable window — costs one O(m) diff walk and no rebuild.
//! * [`Gf2Cell`] — per-node GF(2) RLNC state as one word-packed row
//!   arena, with incremental Gaussian elimination running directly on
//!   `u64` limb slices (`dyncode_gf::bits::limb_xor` and friends) instead
//!   of per-packet `Vec` clones.
//! * [`ForwardCell`] — the knowledge-based forwarding schedules with a
//!   flat per-round message arena instead of per-node `Vec<usize>`
//!   messages and inbox clones.
//!
//! **Equivalence contract.** For every eligible cell, [`run_fast`]
//! produces a `RunResult` bit-identical to the reference simulator's —
//! rounds, bit accounting, adversary schedule, and per-round history.
//! This holds because the fast loop replays the reference loop's event
//! order exactly: the adversary sees the same
//! [`KnowledgeView`](dyncode_dynet::adversary::KnowledgeView) each
//! round, protocol coins are
//! drawn in the same order (one `bool` per basis row per compose for the
//! coding cells, none for forwarding), and deliveries apply per node in
//! ascending neighbor order. `tests/kernel_equivalence.rs` locks the
//! contract across the eligible-spec × adversary × seed matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod csr;
pub mod forward;
pub mod gf2cell;

pub use cell::{run_fast, FastCell};
pub use csr::CsrTopology;
pub use forward::ForwardCell;
pub use gf2cell::{Gf2Cell, Gf2ViewMode};

use std::fmt;

/// Which execution backend a run uses — threaded through
/// `core::runner::run_spec_kernel`, the engine's `kernel =` campaign key,
/// and the bench CLI's `--kernel` flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Kernel {
    /// The reference simulator (`dyncode_dynet::simulator::run`), for
    /// every spec. The default: committed baselines are reference runs.
    #[default]
    Reference,
    /// The arena-backed fast path. Panics on a spec outside the eligible
    /// families (use [`Kernel::Auto`] to fall back instead).
    Fast,
    /// Fast for eligible specs, Reference otherwise.
    Auto,
}

impl Kernel {
    /// The spec-text name (`reference` | `fast` | `auto`).
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Reference => "reference",
            Kernel::Fast => "fast",
            Kernel::Auto => "auto",
        }
    }

    /// Parses a spec-text name; unknown names enumerate the valid ones.
    pub fn parse(s: &str) -> Result<Kernel, String> {
        match s.trim() {
            "reference" => Ok(Kernel::Reference),
            "fast" => Ok(Kernel::Fast),
            "auto" => Ok(Kernel::Auto),
            other => Err(format!(
                "unknown kernel {other:?}; valid kernels: reference, fast, auto"
            )),
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_round_trip() {
        for k in [Kernel::Reference, Kernel::Fast, Kernel::Auto] {
            assert_eq!(Kernel::parse(k.name()).unwrap(), k);
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(Kernel::default(), Kernel::Reference);
        let err = Kernel::parse("turbo").unwrap_err();
        assert!(err.contains("valid kernels"), "{err}");
    }
}
