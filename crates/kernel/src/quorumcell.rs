//! The quorum family on the fast backend: one flat u32 arena slot per
//! `(node, peer)` pair instead of per-node `Vec`s, delivered-max merges
//! walked over CSR rows.
//!
//! The cell mirrors `dyncode_quorum::QuorumProtocol` exactly — same
//! always-speak compose, same compose-time row snapshot, same max-merge
//! plus single advancement step per delivery, same fixed 32-bits-per-peer
//! wire accounting — and shares the watermark / advancement math with the
//! reference crate ([`dyncode_quorum::watermark_with`],
//! [`dyncode_quorum::advance_own_round`]) so the two backends cannot
//! drift. The family draws no protocol randomness at all, so fast ==
//! reference is structural: both compute the identical deterministic
//! function of the delivered topology sequence.

use crate::cell::FastCell;
use crate::csr::CsrTopology;
use dyncode_dynet::adversary::KnowledgeView;
use dyncode_dynet::bitset::BitSet;
use dyncode_quorum::{advance_own_round, quorum_metrics, QuorumConfig, Round};
use rand::rngs::StdRng;

/// Arena-backed quorum cell: `rounds` holds the n×n `max_rounds` tables
/// row-major (`rounds[u*n + v]` = the latest round node `u` knows peer
/// `v` prevoted), `snap` the compose-time snapshot the round's messages
/// are read from.
pub struct QuorumCell {
    n: usize,
    k: usize,
    cfg: QuorumConfig,
    rounds: Vec<Round>,
    snap: Vec<Round>,
    scratch: Vec<Round>,
}

impl QuorumCell {
    /// A fresh cell: every node has prevoted round 1, ⊥ for every peer.
    /// `k` is carried only for the knowledge-view shape. Panics outside
    /// the `n ≥ 5f+1` regime — the same message as the reference
    /// protocol's constructor.
    pub fn new(n: usize, k: usize, cfg: QuorumConfig) -> Self {
        if let Err(e) = cfg.validate_for(n) {
            panic!("{e}");
        }
        let mut rounds = vec![0; n * n];
        for u in 0..n {
            rounds[u * n + u] = 1;
        }
        QuorumCell {
            n,
            k,
            cfg,
            snap: rounds.clone(),
            rounds,
            scratch: Vec::new(),
        }
    }

    fn row(&self, u: usize) -> &[Round] {
        &self.rounds[u * self.n..(u + 1) * self.n]
    }

    fn node_done(&self, u: usize) -> bool {
        self.cfg.decided(self.row(u), &mut Vec::new())
    }
}

impl FastCell for QuorumCell {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn compose_all(
        &mut self,
        round: usize,
        _rng: &mut StdRng,
        bit_limit: Option<u64>,
    ) -> (u64, u64) {
        // Every node gossips its whole row every round (see the reference
        // compose): snapshot the tables so this round's deliveries read
        // pre-round state, and account 32 bits per (peer, round) entry.
        self.snap.copy_from_slice(&self.rounds);
        let per_msg = (self.n as u64) * u64::from(Round::BITS);
        if let Some(limit) = bit_limit {
            for u in 0..self.n {
                let bits = per_msg;
                assert!(
                    bits <= limit,
                    "node {u} exceeded the message budget at round {round}: \
                     {bits} > {limit} bits"
                );
            }
        }
        (per_msg * self.n as u64, per_msg)
    }

    fn deliver_all(&mut self, topo: &CsrTopology, _round: usize, _rng: &mut StdRng) {
        let n = self.n;
        for u in 0..n {
            let row = &mut self.rounds[u * n..(u + 1) * n];
            for &v in topo.neighbors(u) {
                let msg = &self.snap[(v as usize) * n..(v as usize + 1) * n];
                for (slot, &r) in row.iter_mut().zip(msg) {
                    if r > *slot {
                        *slot = r;
                    }
                }
            }
            if let Some(step) =
                advance_own_round(row, u, self.cfg.plus_threshold(), &mut self.scratch)
            {
                quorum_metrics().watermark_advance.record(u64::from(step));
            }
        }
    }

    fn spoke(&self, _node: usize) -> bool {
        // Matches the reference compose, which always returns `Some` —
        // required to keep the per-speaker delivery coin stream aligned.
        true
    }

    fn round_end(&mut self, _round: usize, _rng: &mut StdRng) {
        let decided = (0..self.n).filter(|&u| self.node_done(u)).count();
        quorum_metrics().decided_nodes.set(decided as u64);
    }

    fn all_done(&self) -> bool {
        (0..self.n).all(|u| self.node_done(u))
    }

    fn view(&self) -> KnowledgeView {
        KnowledgeView {
            tokens: vec![BitSet::new(self.k); self.n],
            dims: (0..self.n)
                .map(|u| self.row(u).iter().filter(|&&r| r > 0).count())
                .collect(),
            done: (0..self.n).map(|u| self.node_done(u)).collect(),
        }
    }

    fn history_stats(&self) -> (usize, usize, usize, usize) {
        let dims: Vec<usize> = (0..self.n)
            .map(|u| self.row(u).iter().filter(|&&r| r > 0).count())
            .collect();
        let done = (0..self.n).filter(|&u| self.node_done(u)).count();
        (
            dims.iter().copied().min().unwrap_or(0),
            dims.iter().copied().max().unwrap_or(0),
            0, // the family owns no tokens
            done,
        )
    }

    fn fully_disseminated(&self) -> bool {
        // The family's postcondition is its quorum goal, not token
        // coverage; the runner verifies through the spec's termination
        // predicate, which reads the done flags below.
        self.all_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::run_fast;
    use dyncode_dynet::adversaries::ShuffledPathAdversary;
    use dyncode_dynet::simulator::run;
    use dyncode_dynet::simulator::SimConfig;
    use dyncode_quorum::{QuorumGoal, QuorumProtocol};

    fn cfg(f: usize, goal: QuorumGoal) -> QuorumConfig {
        QuorumConfig { f, goal }
    }

    #[test]
    fn fast_cell_matches_the_reference_protocol_bit_for_bit() {
        let n = 12;
        for goal in [
            QuorumGoal::Watermark { rounds: 8 },
            QuorumGoal::Decide { q: 4 },
        ] {
            let sim = SimConfig::with_max_rounds(50 * n * n).recording();
            let mut reference = QuorumProtocol::new(n, n, cfg(2, goal));
            let slow = run(&mut reference, &mut ShuffledPathAdversary, &sim, 5);
            let mut cell = QuorumCell::new(n, n, cfg(2, goal));
            let fast = run_fast(&mut cell, &mut ShuffledPathAdversary, &sim, 5);
            assert_eq!(slow, fast, "{goal:?}");
            assert!(fast.completed);
            // Final state agrees row for row.
            for u in 0..n {
                assert_eq!(reference.row(u), cell.row(u), "node {u}");
            }
        }
    }

    #[test]
    fn strict_bit_accounting_is_32_bits_per_peer() {
        let n = 6;
        let sim = SimConfig::with_max_rounds(1000).strict_bits(32 * n as u64);
        let mut cell = QuorumCell::new(n, n, cfg(1, QuorumGoal::Watermark { rounds: 3 }));
        let r = run_fast(&mut cell, &mut ShuffledPathAdversary, &sim, 1);
        assert!(r.completed);
        assert_eq!(r.max_message_bits, 32 * n as u64);
    }

    #[test]
    #[should_panic(expected = "exceeded the message budget")]
    fn strict_bit_accounting_rejects_an_undersized_budget() {
        let n = 6;
        let sim = SimConfig::with_max_rounds(1000).strict_bits(32 * n as u64 - 1);
        let mut cell = QuorumCell::new(n, n, cfg(1, QuorumGoal::Watermark { rounds: 3 }));
        let _ = run_fast(&mut cell, &mut ShuffledPathAdversary, &sim, 1);
    }

    #[test]
    #[should_panic(expected = "n ≥ 5f+1")]
    fn cell_rejects_f_at_or_above_n_over_5() {
        QuorumCell::new(10, 10, cfg(2, QuorumGoal::Watermark { rounds: 8 }));
    }
}
