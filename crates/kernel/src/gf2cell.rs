//! The word-packed GF(2) RLNC cell: per-node coding state as one flat
//! `u64` row arena with incremental Gaussian elimination on limb slices.
//!
//! One cell covers both GF(2) coding families of the registry —
//! `indexed-broadcast` (Lemma 5.3 over packed GF(2)) and the randomized
//! `field-broadcast(gf2)` — because their dynamics are *identical*: both
//! seed source vectors `e_i ++ payload_i`, both emit a uniformly random
//! span combination (one coin per basis row, in pivot order), both insert
//! received packets into an RREF basis, and both price a message at
//! `k + d` bits. They differ only in the adversary view ([`Gf2ViewMode`]):
//! `field-broadcast` reports all-or-nothing decodability, while
//! `indexed-broadcast` reports per-token availability.
//!
//! The RREF invariant matches `dyncode_gf::{Subspace, Gf2Basis}` exactly
//! (reduce, pivot scan, back-eliminate, pivot-sorted insert — over GF(2)
//! pivot normalization is a no-op), so the span evolution, the per-row
//! coin count of every compose, and hence the whole run are bit-identical
//! to the reference protocols. What changes is the cost model: a row
//! operation is a `limb_xor` over `⌈(k+d)/64⌉` words with no allocation —
//! the reference works element-wise on `Vec<Gf2>` (one byte per
//! coordinate) and clones every packet on receive.

use crate::cell::FastCell;
use crate::csr::CsrTopology;
use dyncode_dynet::adversary::KnowledgeView;
use dyncode_dynet::bitset::BitSet;
use dyncode_gf::bits::{limb_get, limb_leading_one, limb_prefix_ones, limb_xor, limbs_for};
use dyncode_gf::Gf2Vec;
use rand::rngs::StdRng;
use rand::RngExt;

/// Which adversary/statistics view the cell reports (the one observable
/// difference between the two GF(2) coding protocols).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gf2ViewMode {
    /// `field-broadcast(gf2)`: a node's token set is all k tokens once
    /// its coefficient projection has full rank, empty before.
    Broadcast,
    /// `indexed-broadcast`: a node's token set is the individually
    /// decodable tokens (basis rows with a unit coefficient prefix).
    Indexed,
}

/// The arena-backed packed GF(2) coding state for all n nodes.
pub struct Gf2Cell {
    n: usize,
    k: usize,
    /// Row width in bits: k coefficient bits + payload bits.
    ambient: usize,
    /// Row width in u64 limbs.
    wpr: usize,
    mode: Gf2ViewMode,
    /// Row arena: node `u`'s slot `s` lives at
    /// `rows[(u·k + s)·wpr .. (u·k + s + 1)·wpr]`. Slots are assigned in
    /// insertion order and never move; `order` holds the pivot-sorted
    /// permutation. A node's rank never exceeds k (every packet lies in
    /// the span of the k source vectors), so k slots per node suffice.
    rows: Vec<u64>,
    /// Per node, basis position → row slot (pivot-ascending order).
    order: Vec<u32>,
    /// Per node, basis position → pivot column (strictly increasing).
    pivots: Vec<u32>,
    /// Per node, column → row slot of the basis row pivoting there
    /// (`u32::MAX` = no pivot): the O(1) lookup the reduce loop uses to
    /// jump along `v`'s set bits instead of scanning every basis row.
    pivot_slot: Vec<u32>,
    /// Per node: basis dimension.
    rank: Vec<u32>,
    /// Per node: pivots below k (the coefficient-projection rank).
    coeff_rank: Vec<u32>,
    /// Message arena: node `u`'s current broadcast at
    /// `msgs[u·wpr .. (u+1)·wpr]`, valid iff `has_msg[u]`.
    msgs: Vec<u64>,
    has_msg: Vec<bool>,
    /// Reduce buffer for incoming packets.
    scratch: Vec<u64>,
}

impl Gf2Cell {
    /// A fresh cell: n nodes, k coded indices, `payload_bits`-bit
    /// payloads, reporting views per `mode`. Seed the sources with
    /// [`Gf2Cell::seed_source`] before running.
    pub fn new(n: usize, k: usize, payload_bits: usize, mode: Gf2ViewMode) -> Self {
        let ambient = k + payload_bits;
        let wpr = limbs_for(ambient).max(1);
        Gf2Cell {
            n,
            k,
            ambient,
            wpr,
            mode,
            rows: vec![0; n * k * wpr],
            order: vec![0; n * k],
            pivots: vec![0; n * k],
            pivot_slot: vec![u32::MAX; n * ambient],
            rank: vec![0; n],
            coeff_rank: vec![0; n],
            msgs: vec![0; n * wpr],
            has_msg: vec![false; n],
            scratch: vec![0; wpr],
        }
    }

    /// Seeds `node` with source index `index` and its payload — the
    /// packed analogue of `Gf2Node::seed_source` / `DenseNode::seed_source`.
    ///
    /// # Panics
    /// Panics if the payload width disagrees or `index >= k`.
    pub fn seed_source(&mut self, node: usize, index: usize, payload: &Gf2Vec) {
        assert!(index < self.k, "source index out of range");
        assert_eq!(
            payload.len(),
            self.ambient - self.k,
            "payload width mismatch"
        );
        let packet = Gf2Vec::unit(self.k, index).concat(payload);
        let mut v = packet.words().to_vec();
        v.resize(self.wpr, 0);
        self.insert(node, &mut v);
    }

    /// The basis dimension of `node`.
    pub fn rank(&self, node: usize) -> usize {
        self.rank[node] as usize
    }

    /// The coefficient-projection rank of `node`.
    pub fn coefficient_rank(&self, node: usize) -> usize {
        self.coeff_rank[node] as usize
    }

    /// Basis row `r` (pivot order) of `node`, as a [`Gf2Vec`] — test and
    /// introspection surface, not the hot path.
    pub fn basis_row(&self, node: usize, r: usize) -> Gf2Vec {
        let slot = self.order[node * self.k + r] as usize;
        let base = (node * self.k + slot) * self.wpr;
        Gf2Vec::from_words(self.rows[base..base + self.wpr].to_vec(), self.ambient)
    }

    /// Inserts `v` (a `wpr`-limb packet) into `node`'s basis; returns
    /// `true` iff innovative. `v` is clobbered (it becomes the reduced
    /// row). Identical math to `Subspace::insert` / `Gf2Basis::insert`.
    fn insert(&mut self, node: usize, v: &mut [u64]) -> bool {
        let (k, wpr) = (self.k, self.wpr);
        let obase = node * k;
        let nrank = self.rank[node] as usize;
        let pbase = node * self.ambient;
        // Reduce against the basis by jumping along `v`'s set bits with
        // the pivot→slot lookup. This performs the exact xor sequence of
        // the reference's ascending-pivot scan: an RREF row is zero left
        // of its pivot, so xoring at pivot p clears bit p and can only
        // touch bits beyond it — set bits are met in ascending order, a
        // set bit at a pivot column triggers the same xor the scan would,
        // and a set bit at a non-pivot column is permanent (no later row
        // reaches below its own pivot). The first permanent bit is
        // therefore the reduced vector's leading one.
        let mut new_pivot = None;
        let mut w = 0;
        while w < wpr {
            let mut word = v[w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                let b = w * 64 + bit;
                let slot = self.pivot_slot[pbase + b];
                if slot != u32::MAX {
                    let base = (obase + slot as usize) * wpr;
                    limb_xor(v, &self.rows[base..base + wpr]);
                    // Bit b is cleared; bits above it (this word included)
                    // may have flipped — reload the word past bit b.
                    word = if bit == 63 {
                        0
                    } else {
                        v[w] & (!0u64 << (bit + 1))
                    };
                } else {
                    new_pivot.get_or_insert(b);
                    word &= word - 1;
                }
            }
            w += 1;
        }
        let Some(p) = new_pivot else {
            return false;
        };
        debug_assert_eq!(limb_leading_one(v), Some(p));
        // Back-eliminate the new pivot column from existing rows.
        for r in 0..nrank {
            let slot = self.order[obase + r] as usize;
            let base = (obase + slot) * wpr;
            if limb_get(&self.rows[base..base + wpr], p) {
                limb_xor(&mut self.rows[base..base + wpr], v);
            }
        }
        // Insert keeping pivots sorted; the row data takes slot `nrank`.
        assert!(
            nrank < k,
            "rank overflow: packets must lie in the k-dimensional source span"
        );
        let idx = self.pivots[obase..obase + nrank].partition_point(|&q| (q as usize) < p);
        for i in (idx..nrank).rev() {
            self.order[obase + i + 1] = self.order[obase + i];
            self.pivots[obase + i + 1] = self.pivots[obase + i];
        }
        self.order[obase + idx] = nrank as u32;
        self.pivots[obase + idx] = p as u32;
        self.pivot_slot[pbase + p] = nrank as u32;
        let base = (obase + nrank) * wpr;
        self.rows[base..base + wpr].copy_from_slice(v);
        self.rank[node] += 1;
        if p < self.k {
            self.coeff_rank[node] += 1;
        }
        true
    }

    /// Individually decodable tokens of `node` (unit coefficient
    /// prefixes), as set bits inserted into `out`.
    fn available_into(&self, node: usize, out: &mut BitSet) -> usize {
        let obase = node * self.k;
        let mut count = 0;
        for r in 0..self.rank[node] as usize {
            let p = self.pivots[obase + r] as usize;
            if p >= self.k {
                break; // pivots are sorted: the rest are payload pivots
            }
            let slot = self.order[obase + r] as usize;
            let base = (obase + slot) * self.wpr;
            if limb_prefix_ones(&self.rows[base..base + self.wpr], self.k) == 1 {
                out.insert(p);
                count += 1;
            }
        }
        count
    }

    fn node_done(&self, node: usize) -> bool {
        self.coeff_rank[node] as usize == self.k
    }
}

impl FastCell for Gf2Cell {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn spoke(&self, node: usize) -> bool {
        self.has_msg[node]
    }

    fn compose_all(
        &mut self,
        round: usize,
        rng: &mut StdRng,
        bit_limit: Option<u64>,
    ) -> (u64, u64) {
        let wpr = self.wpr;
        let bits = self.ambient as u64;
        let mut round_bits = 0u64;
        let mut round_max = 0u64;
        for u in 0..self.n {
            let nrank = self.rank[u] as usize;
            if nrank == 0 {
                // A node that has received nothing stays silent — and
                // draws no coins, exactly like the reference emit.
                self.has_msg[u] = false;
                continue;
            }
            self.msgs[u * wpr..(u + 1) * wpr].fill(0);
            let obase = u * self.k;
            for r in 0..nrank {
                // One coin per basis row in pivot order: the exact draw
                // sequence of `random_combination` over GF(2).
                let coin: bool = rng.random();
                if coin {
                    let slot = self.order[obase + r] as usize;
                    let base = (obase + slot) * wpr;
                    // Split the arenas: msgs and rows are disjoint fields.
                    let (msg, row) = (&mut self.msgs, &self.rows);
                    limb_xor(&mut msg[u * wpr..(u + 1) * wpr], &row[base..base + wpr]);
                }
            }
            if let Some(limit) = bit_limit {
                assert!(
                    bits <= limit,
                    "node {u} exceeded the message budget at round {round}: \
                     {bits} > {limit} bits"
                );
            }
            round_bits += bits;
            round_max = round_max.max(bits);
            self.has_msg[u] = true;
        }
        (round_bits, round_max)
    }

    fn deliver_all(&mut self, topo: &CsrTopology, _round: usize, _rng: &mut StdRng) {
        let wpr = self.wpr;
        let timing = crate::phase::active();
        let mut scratch = std::mem::take(&mut self.scratch);
        for u in 0..self.n {
            // Saturation shortcut: every packet lies in the span of the k
            // source vectors, so a node at rank k already holds the full
            // span — no insert can be innovative or change any state, and
            // the whole inbox can be skipped. (The reference pays a full
            // O(rank · len) reduce per packet here; this is where the
            // fast path wins the straggler phase of a run.)
            if self.rank[u] as usize == self.k {
                continue;
            }
            for &v in topo.neighbors(u) {
                let v = v as usize;
                if self.has_msg[v] {
                    scratch.copy_from_slice(&self.msgs[v * wpr..(v + 1) * wpr]);
                    if timing {
                        let t = std::time::Instant::now();
                        self.insert(u, &mut scratch);
                        crate::phase::elim_add(t.elapsed().as_nanos() as u64);
                    } else {
                        self.insert(u, &mut scratch);
                    }
                }
            }
        }
        self.scratch = scratch;
    }

    fn all_done(&self) -> bool {
        (0..self.n).all(|u| self.node_done(u))
    }

    fn view(&self) -> KnowledgeView {
        let mut tokens = Vec::with_capacity(self.n);
        for u in 0..self.n {
            let mut s = BitSet::new(self.k);
            match self.mode {
                Gf2ViewMode::Broadcast => {
                    if self.node_done(u) {
                        for i in 0..self.k {
                            s.insert(i);
                        }
                    }
                }
                Gf2ViewMode::Indexed => {
                    self.available_into(u, &mut s);
                }
            }
            tokens.push(s);
        }
        KnowledgeView {
            dims: self.rank.iter().map(|&r| r as usize).collect(),
            done: (0..self.n).map(|u| self.node_done(u)).collect(),
            tokens,
        }
    }

    fn history_stats(&self) -> (usize, usize, usize, usize) {
        let min_dim = self.rank.iter().copied().min().unwrap_or(0) as usize;
        let max_dim = self.rank.iter().copied().max().unwrap_or(0) as usize;
        let done = (0..self.n).filter(|&u| self.node_done(u)).count();
        let total_tokens = match self.mode {
            Gf2ViewMode::Broadcast => self.k * done,
            Gf2ViewMode::Indexed => {
                let mut scratch = BitSet::new(self.k);
                (0..self.n)
                    .map(|u| self.available_into(u, &mut scratch))
                    .sum()
            }
        };
        (min_dim, max_dim, total_tokens, done)
    }

    fn fully_disseminated(&self) -> bool {
        match self.mode {
            Gf2ViewMode::Broadcast => self.all_done(),
            Gf2ViewMode::Indexed => {
                let mut scratch = BitSet::new(self.k);
                (0..self.n).all(|u| self.available_into(u, &mut scratch) == self.k)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncode_gf::Gf2Basis;
    use rand::SeedableRng;

    /// Mirror of the packed reference basis: every insert must agree on
    /// innovation, rank, pivots, and row content. Inputs are random
    /// combinations of k source packets — the only vectors a run can ever
    /// deliver (and what bounds the row arena at k slots per node).
    #[test]
    fn insert_agrees_with_gf2basis() {
        let (k, d) = (6, 9);
        let mut rng = StdRng::seed_from_u64(11);
        let sources: Vec<Gf2Vec> = (0..k)
            .map(|i| Gf2Vec::unit(k, i).concat(&Gf2Vec::random(d, &mut rng)))
            .collect();
        let mut cell = Gf2Cell::new(1, k, d, Gf2ViewMode::Indexed);
        let mut reference = Gf2Basis::new(k + d);
        for _ in 0..60 {
            let mut v = Gf2Vec::zeros(k + d);
            for s in &sources {
                if rng.random() {
                    v.xor_assign(s);
                }
            }
            let mut limbs = v.words().to_vec();
            limbs.resize(cell.wpr, 0);
            let fast = cell.insert(0, &mut limbs);
            let slow = reference.insert(v);
            assert_eq!(fast, slow);
            assert_eq!(cell.rank(0), reference.dim());
            for (r, row) in reference.basis().iter().enumerate() {
                assert_eq!(&cell.basis_row(0, r), row, "row {r}");
            }
            assert_eq!(
                cell.coefficient_rank(0),
                reference.prefix_rank(k),
                "coefficient rank"
            );
        }
    }

    #[test]
    fn seeded_sources_make_node_decodable() {
        let (k, d) = (4, 5);
        let mut rng = StdRng::seed_from_u64(7);
        let payloads: Vec<Gf2Vec> = (0..k).map(|_| Gf2Vec::random(d, &mut rng)).collect();
        let mut cell = Gf2Cell::new(2, k, d, Gf2ViewMode::Indexed);
        for (i, p) in payloads.iter().enumerate() {
            cell.seed_source(0, i, p);
        }
        assert_eq!(cell.rank(0), k);
        assert_eq!(cell.coefficient_rank(0), k);
        assert!(!cell.all_done(), "node 1 has nothing yet");
        let v = cell.view();
        assert_eq!(v.dims, vec![k, 0]);
        assert_eq!(v.tokens[0].len(), k);
        assert!(v.tokens[1].is_empty());
        // Broadcast-mode view is all-or-nothing.
        let mut bc = Gf2Cell::new(1, k, d, Gf2ViewMode::Broadcast);
        bc.seed_source(0, 0, &payloads[0]);
        assert!(bc.view().tokens[0].is_empty(), "not done yet: empty");
    }

    #[test]
    fn zero_packet_is_never_innovative() {
        let mut cell = Gf2Cell::new(1, 3, 3, Gf2ViewMode::Indexed);
        let mut zero = vec![0u64; cell.wpr];
        assert!(!cell.insert(0, &mut zero));
        assert_eq!(cell.rank(0), 0);
    }
}
