//! The arena-backed token-forwarding cell: both Theorem 2.1 schedules
//! (baseline and T-stable pipelined) with a flat per-round message arena.
//!
//! The reference `TokenForwarding` allocates a `Vec<usize>` message per
//! speaking node per round, and the simulator clones those into a fresh
//! inbox `Vec` per receiving node. Here a round's messages live in one
//! reused `u32` arena indexed by per-node offsets, and delivery walks the
//! CSR neighbors straight into the receivers' known-sets — zero per-round
//! heap growth after warmup. The schedule logic (prefix completion,
//! window filter, phase/window resets) is a line-for-line transcription
//! of the reference protocol, which draws no randomness, so equivalence
//! is purely structural.

use crate::cell::FastCell;
use crate::csr::CsrTopology;
use dyncode_dynet::adversary::KnowledgeView;
use dyncode_dynet::bitset::BitSet;
use rand::rngs::StdRng;

/// The arena-backed forwarding state for all n nodes.
pub struct ForwardCell {
    n: usize,
    k: usize,
    /// Token size in bits (each forwarded token costs d bits).
    d: usize,
    /// Tokens per message, ⌊b/d⌋.
    per_msg: usize,
    /// Tokens retired per phase.
    batch: usize,
    /// Rounds per phase.
    phase_rounds: usize,
    /// Stability window of the pipelining rule; `None` = baseline.
    window: Option<usize>,
    /// Retired-prefix length on the public schedule.
    completed: usize,
    /// Per node: known token indices.
    known: Vec<BitSet>,
    /// Per node: batch tokens already broadcast this window (pipelined
    /// mode only).
    sent: Vec<BitSet>,
    /// Message arena: node `u`'s round broadcast is
    /// `msg_tokens[msg_off[u] .. msg_off[u + 1]]`.
    msg_tokens: Vec<u32>,
    msg_off: Vec<u32>,
}

impl ForwardCell {
    /// A fresh cell for the given schedule. `holders[i]` lists the nodes
    /// initially knowing token `i`; `per_msg` is ⌊b/d⌋ (at least 1).
    ///
    /// # Panics
    /// Panics on an out-of-range holder or zero schedule constants.
    #[allow(clippy::too_many_arguments)] // the schedule's full parameter set
    pub fn new(
        n: usize,
        k: usize,
        d: usize,
        per_msg: usize,
        batch: usize,
        phase_rounds: usize,
        window: Option<usize>,
        holders: &[Vec<usize>],
    ) -> Self {
        assert!(
            per_msg >= 1 && batch >= 1 && phase_rounds >= 1,
            "bad schedule"
        );
        let mut known = vec![BitSet::new(k); n];
        for (i, hs) in holders.iter().enumerate() {
            for &u in hs {
                known[u].insert(i);
            }
        }
        ForwardCell {
            n,
            k,
            d,
            per_msg,
            batch,
            phase_rounds,
            window,
            completed: 0,
            known,
            sent: vec![BitSet::new(k); n],
            msg_tokens: Vec::new(),
            msg_off: vec![0; n + 1],
        }
    }

    /// The retired-prefix length (test surface).
    pub fn completed(&self) -> usize {
        self.completed
    }

    fn node_done(&self, u: usize) -> bool {
        self.completed >= self.k && self.known[u].len() == self.k
    }
}

impl FastCell for ForwardCell {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn spoke(&self, node: usize) -> bool {
        // A nonempty arena slice ⇔ the reference compose returned a
        // nonempty batch ⇔ `Some(chosen)`.
        self.msg_off[node + 1] > self.msg_off[node]
    }

    fn compose_all(
        &mut self,
        round: usize,
        _rng: &mut StdRng,
        bit_limit: Option<u64>,
    ) -> (u64, u64) {
        let mut round_bits = 0u64;
        let mut round_max = 0u64;
        self.msg_tokens.clear();
        self.msg_off[0] = 0;
        for u in 0..self.n {
            let start = self.msg_tokens.len();
            // The next batch: the `batch` smallest known tokens past the
            // retired prefix; in pipelined mode, minus those already sent
            // this window; at most ⌊b/d⌋ chosen — exactly the reference
            // compose (`next_batch` + window filter + take).
            for i in self.known[u].iter().skip(self.completed).take(self.batch) {
                if self.msg_tokens.len() - start == self.per_msg {
                    break;
                }
                if self.window.is_some() && self.sent[u].contains(i) {
                    continue;
                }
                self.msg_tokens.push(i as u32);
            }
            if self.window.is_some() {
                for j in start..self.msg_tokens.len() {
                    let i = self.msg_tokens[j] as usize;
                    self.sent[u].insert(i);
                }
            }
            let chosen = self.msg_tokens.len() - start;
            if chosen > 0 {
                let bits = (chosen * self.d) as u64;
                if let Some(limit) = bit_limit {
                    assert!(
                        bits <= limit,
                        "node {u} exceeded the message budget at round {round}: \
                         {bits} > {limit} bits"
                    );
                }
                round_bits += bits;
                round_max = round_max.max(bits);
            }
            self.msg_off[u + 1] = self.msg_tokens.len() as u32;
        }
        (round_bits, round_max)
    }

    fn deliver_all(&mut self, topo: &CsrTopology, _round: usize, _rng: &mut StdRng) {
        for u in 0..self.n {
            for &v in topo.neighbors(u) {
                let v = v as usize;
                let (a, b) = (self.msg_off[v] as usize, self.msg_off[v + 1] as usize);
                for j in a..b {
                    let token = self.msg_tokens[j] as usize;
                    self.known[u].insert(token);
                }
            }
        }
    }

    fn round_end(&mut self, round: usize, _rng: &mut StdRng) {
        if let Some(t) = self.window {
            if (round + 1).is_multiple_of(t) {
                for s in &mut self.sent {
                    s.clear();
                }
            }
        }
        if (round + 1).is_multiple_of(self.phase_rounds) {
            self.completed = (self.completed + self.batch).min(self.k);
            for s in &mut self.sent {
                s.clear();
            }
        }
    }

    fn all_done(&self) -> bool {
        self.completed >= self.k && (0..self.n).all(|u| self.known[u].len() == self.k)
    }

    fn view(&self) -> KnowledgeView {
        KnowledgeView {
            tokens: self.known.clone(),
            dims: self.known.iter().map(BitSet::len).collect(),
            done: (0..self.n).map(|u| self.node_done(u)).collect(),
        }
    }

    fn history_stats(&self) -> (usize, usize, usize, usize) {
        let counts: Vec<usize> = self.known.iter().map(BitSet::len).collect();
        let min_dim = counts.iter().copied().min().unwrap_or(0);
        let max_dim = counts.iter().copied().max().unwrap_or(0);
        let total_tokens = counts.iter().sum();
        let done = (0..self.n).filter(|&u| self.node_done(u)).count();
        (min_dim, max_dim, total_tokens, done)
    }

    fn fully_disseminated(&self) -> bool {
        (0..self.n).all(|u| self.known[u].len() == self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Node 0 knows everything, batch 4, 2 tokens per message, window 4:
    /// the hand-computed schedule of the reference window-rule test.
    #[test]
    fn window_rule_matches_reference_schedule() {
        let holders: Vec<Vec<usize>> = (0..8).map(|_| vec![0]).collect();
        let mut cell = ForwardCell::new(8, 8, 4, 2, 4, 100, Some(4), &holders);
        let mut rng = StdRng::seed_from_u64(1);
        let msg = |c: &ForwardCell, u: usize| -> Vec<u32> {
            c.msg_tokens[c.msg_off[u] as usize..c.msg_off[u + 1] as usize].to_vec()
        };
        cell.compose_all(0, &mut rng, None);
        assert_eq!(msg(&cell, 0), vec![0, 1]);
        cell.compose_all(1, &mut rng, None);
        assert_eq!(msg(&cell, 0), vec![2, 3]);
        cell.compose_all(2, &mut rng, None);
        assert!(msg(&cell, 0).is_empty(), "batch exhausted");
        for r in 2..4 {
            cell.round_end(r, &mut rng);
        }
        cell.compose_all(4, &mut rng, None);
        assert_eq!(msg(&cell, 0), vec![0, 1], "window reset re-enables");
    }

    #[test]
    fn phase_end_retires_the_batch() {
        let holders: Vec<Vec<usize>> = (0..4).map(|u| vec![u]).collect();
        let mut cell = ForwardCell::new(4, 4, 4, 2, 2, 3, None, &holders);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(cell.completed(), 0);
        cell.round_end(1, &mut rng);
        assert_eq!(cell.completed(), 0, "mid-phase");
        cell.round_end(2, &mut rng);
        assert_eq!(cell.completed(), 2, "phase of 3 rounds retires batch 2");
        cell.round_end(5, &mut rng);
        assert_eq!(cell.completed(), 4);
        assert!(!cell.all_done(), "nodes still missing tokens");
    }
}
