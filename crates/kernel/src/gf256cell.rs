//! The bit-planar GF(2^8) RLNC cell — the fast backend for
//! `field-broadcast(gf256)` (randomized mode).
//!
//! [`DenseCell`](crate::densecell::DenseCell) keeps one byte per symbol
//! and routes row operations through the log/antilog product table; at
//! the kernel's row lengths that is one L1 table load per byte, and the
//! reference backend's per-entry `mul` loop is only ~30% slower — not
//! enough of a gap to pay for a second backend. This cell stores each
//! row *bit-planar* instead: plane `j` holds bit `j` of every symbol,
//! packed 64 symbols per `u64` word, so a row of `ambient` symbols is
//! 8 × ⌈ambient/64⌉ words. Multiplication by a constant `c` is a GF(2)-
//! linear map on the 8 planes — `y_j = Σ_i M_c[i,j]·x_i` where column
//! `i` of `M_c` is the byte `c·x^i` — so a whole-row axpy is at most 64
//! (on average ~32) word-wide XORs per 64 symbols: register arithmetic
//! instead of table lookups, with no per-symbol branches.
//!
//! Two further structural wins over both the reference and the generic
//! dense cell:
//!
//! * **Contiguous-pivot shortcut.** A random in-span packet reduces to
//!   a leading index at the first uncovered column w.p. 1 − 1/q, so a
//!   node's pivots are almost always exactly `0..rank`. RREF then pins
//!   row `j`'s support to `{j} ∪ [rank..ambient)` — the interior
//!   columns are all other rows' pivots — with two payoffs: the
//!   elimination coefficients are all readable up front (word-wide,
//!   via an 8×8 bit-block transpose), and at high rank the whole
//!   reduce *bit-slices*: `c·row = Σ_b bit_b(c)·(x^b·row)`, so rows
//!   fold into eight XOR accumulators (straight-line word XORs, no
//!   per-row plane-mask decode) and the monomial multiplications
//!   happen once. Back-elimination bit-slices the other way — the
//!   eight products `x^b·v` are formed once and rows XOR in the ones
//!   their coefficient selects. Compose at contiguous rank writes the
//!   drawn coefficients directly and pays row arithmetic only on the
//!   tail words `[rank/64..w)`; at rank k this is the classic
//!   saturated `(I | P)` compose, O(k + k·payload) instead of
//!   O(k·ambient).
//! * **Saturation skip** on delivery, as in the dense cell: a rank-k
//!   basis absorbs nothing, and inserts draw no coins, so skipping the
//!   inbox is bit-invisible.
//!
//! Messages stay bit-planar in the arena — the wire format is internal
//! to the cell, and the bit accounting is ⌈lg q⌉ · ambient either way.
//!
//! **Equivalence.** The insert replays `Subspace::insert` operation for
//! operation (reduce in pivot order, leading-index scan, pivot
//! normalization, back-elimination, pivot-sorted insert) on the planar
//! representation — GF(2^8) addition is XOR on every plane, so each
//! planar op equals the symbol-wise op exactly — and compose draws one
//! `Gf256::random` per basis row in pivot order, the draw sequence of
//! `vector::random_combination`. Runs are bit-identical to the reference
//! `FieldBroadcast<Gf256>` under the kernel contract.

use crate::cell::FastCell;
use crate::csr::CsrTopology;
use dyncode_dynet::adversary::KnowledgeView;
use dyncode_dynet::bitset::BitSet;
use dyncode_gf::{Field, Gf256};
use rand::rngs::StdRng;

/// `dst ^= c · src` on bit-planar rows of `w` words per plane, restricted
/// to words `[lo..w)` of every plane (callers pass the pivot word of a
/// leading-zero row, or `0` for the whole row).
///
/// Walks destination planes outermost and folds the contributing source
/// planes four at a time, so each destination word is loaded and stored
/// ⌈popcount/4⌉ times (~1 on average) instead of once per contributing
/// plane. The plane-feed masks come from GF(2^8)'s precomputed
/// [`Gf256::plane_masks`] table.
#[inline]
fn plane_axpy(dst: &mut [u64], src: &[u64], c: u8, w: usize, lo: usize) {
    if c == 0 {
        return;
    }
    let masks = Gf256(c).plane_masks();
    for (j, dplane) in dst.chunks_exact_mut(w).enumerate() {
        let mut mask = masks[j] as u32;
        let d = &mut dplane[lo..];
        while mask != 0 {
            let i1 = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let s1 = &src[i1 * w + lo..(i1 + 1) * w];
            if mask == 0 {
                for (dt, a) in d.iter_mut().zip(s1) {
                    *dt ^= *a;
                }
                break;
            }
            let i2 = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let s2 = &src[i2 * w + lo..(i2 + 1) * w];
            if mask == 0 {
                for ((dt, a), b) in d.iter_mut().zip(s1).zip(s2) {
                    *dt ^= *a ^ *b;
                }
                break;
            }
            let i3 = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let s3 = &src[i3 * w + lo..(i3 + 1) * w];
            if mask == 0 {
                for (((dt, a), b), e) in d.iter_mut().zip(s1).zip(s2).zip(s3) {
                    *dt ^= *a ^ *b ^ *e;
                }
                break;
            }
            let i4 = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let s4 = &src[i4 * w + lo..(i4 + 1) * w];
            for ((((dt, a), b), e), f) in d.iter_mut().zip(s1).zip(s2).zip(s3).zip(s4) {
                *dt ^= *a ^ *b ^ *e ^ *f;
            }
        }
    }
}

/// The symbol at index `idx`, gathered across the 8 planes.
#[inline]
fn get_sym(planes: &[u64], w: usize, idx: usize) -> u8 {
    let (word, bit) = (idx / 64, idx % 64);
    let mut b = 0u8;
    for j in 0..8 {
        b |= (((planes[j * w + word] >> bit) & 1) as u8) << j;
    }
    b
}

/// Transposes a `u64` viewed as an 8×8 bit matrix (byte `r` is row `r`,
/// so bit `8r + c` maps to bit `8c + r`) — the classic three-step
/// delta-swap transpose.
#[inline]
fn transpose8x8(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00aa_00aa_00aa_00aa;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_cccc_0000_cccc;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_f0f0_f0f0;
    x ^= t ^ (t << 28);
    x
}

/// Gathers symbols `[0..count)` of a planar row into `out` bytes, whole
/// words at a time: each group of 8 symbols is one 8×8 bit-block
/// transpose (byte lane `l` of the 8 plane words), ~5× cheaper than 8
/// masked plane reads per symbol via [`get_sym`]. `out` must hold
/// `count` rounded up to a multiple of 64 bytes.
#[inline]
fn gather_syms(planes: &[u64], w: usize, count: usize, out: &mut [u8]) {
    for t in 0..count.div_ceil(64) {
        let mut lanes = [0u64; 8];
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane = planes[j * w + t];
        }
        for l in 0..8 {
            let mut x = 0u64;
            for (j, &lane) in lanes.iter().enumerate() {
                x |= ((lane >> (8 * l)) & 0xff) << (8 * j);
            }
            let y = transpose8x8(x);
            out[t * 64 + l * 8..t * 64 + l * 8 + 8].copy_from_slice(&y.to_le_bytes());
        }
    }
}

/// Sets the symbol at `idx` to `c`; the position must currently be zero.
#[inline]
fn set_sym(planes: &mut [u64], w: usize, idx: usize, c: u8) {
    let (word, bit) = (idx / 64, idx % 64);
    for j in 0..8 {
        planes[j * w + word] |= (((c >> j) & 1) as u64) << bit;
    }
}

/// The index of the first nonzero symbol: the planar analogue of
/// `vector::leading_index`. Symbols live at ascending bit positions in
/// chunked-LE order, so the first set bit of the OR of all planes is the
/// leading symbol.
#[inline]
fn leading(planes: &[u64], w: usize) -> Option<usize> {
    for t in 0..w {
        let mut or = 0u64;
        for j in 0..8 {
            or |= planes[j * w + t];
        }
        if or != 0 {
            return Some(t * 64 + or.trailing_zeros() as usize);
        }
    }
    None
}

/// One node's basis: a slot-major planar row arena plus the pivot-sorted
/// indirection, exactly as in the dense cell.
#[derive(Clone, Debug)]
struct NodeBasis {
    /// Row slot `s` lives at `rows[s·rw .. (s+1)·rw]` (`rw = 8w` words).
    rows: Vec<u64>,
    /// Basis position (pivot-ascending) → row slot.
    order: Vec<u32>,
    /// Basis position → pivot column, strictly increasing.
    pivots: Vec<u32>,
}

/// The bit-planar GF(2^8) coding state for all n nodes.
pub struct Gf256Cell {
    n: usize,
    k: usize,
    /// Row width in symbols: k coefficients + payload symbols.
    ambient: usize,
    /// Words per bit-plane: ⌈ambient/64⌉.
    w: usize,
    /// Words per row: 8 planes.
    rw: usize,
    nodes: Vec<NodeBasis>,
    /// Per node: pivots below k (the coefficient-projection rank).
    coeff_rank: Vec<u32>,
    /// Message arena: node `u`'s planar broadcast at
    /// `msgs[u·rw .. (u+1)·rw]`, valid iff `has_msg[u]`.
    msgs: Vec<u64>,
    has_msg: Vec<bool>,
    /// Compose/delivery buffer, one planar row.
    scratch: Vec<u64>,
    /// Normalization buffer, one planar row.
    scratch2: Vec<u64>,
    /// Coefficient gather buffer for the contiguous reduce: one byte
    /// per ambient column, rounded up to whole 64-symbol words.
    cscratch: Vec<u8>,
    /// Eight planar rows of bit-sliced accumulators for the
    /// high-rank reduce and back-elimination.
    bacc: Vec<u64>,
}

/// Ranks below this use the per-row axpy paths; from here up the
/// bit-sliced accumulation wins (its fixed cost — zeroing the
/// accumulators and eight monomial axpys — amortizes over the rows).
const BITSLICE_MIN_RANK: usize = 32;

impl Gf256Cell {
    /// A fresh cell: n nodes, k coded indices, `payload_len`-symbol
    /// payloads. Seed the sources with [`Gf256Cell::seed_source`] before
    /// running.
    pub fn new(n: usize, k: usize, payload_len: usize) -> Self {
        let ambient = k + payload_len;
        let w = ambient.div_ceil(64);
        let rw = 8 * w;
        Gf256Cell {
            n,
            k,
            ambient,
            w,
            rw,
            nodes: vec![
                NodeBasis {
                    rows: Vec::new(),
                    order: Vec::new(),
                    pivots: Vec::new(),
                };
                n
            ],
            coeff_rank: vec![0; n],
            msgs: vec![0; n * rw],
            has_msg: vec![false; n],
            scratch: vec![0; rw],
            scratch2: vec![0; rw],
            cscratch: vec![0; w * 64],
            bacc: vec![0; 8 * rw],
        }
    }

    /// Seeds `node` with source index `index` and its payload — the planar
    /// analogue of `DenseNode::seed_source`.
    ///
    /// # Panics
    /// Panics if the payload width disagrees or `index >= k`.
    pub fn seed_source(&mut self, node: usize, index: usize, payload: &[Gf256]) {
        assert!(index < self.k, "source index out of range");
        assert_eq!(
            payload.len(),
            self.ambient - self.k,
            "payload width mismatch"
        );
        let mut v = std::mem::take(&mut self.scratch);
        v.fill(0);
        set_sym(&mut v, self.w, index, 1);
        for (i, s) in payload.iter().enumerate() {
            set_sym(&mut v, self.w, self.k + i, s.0);
        }
        self.insert(node, &mut v);
        self.scratch = v;
    }

    /// The basis dimension of `node`.
    pub fn rank(&self, node: usize) -> usize {
        self.nodes[node].order.len()
    }

    /// The coefficient-projection rank of `node`.
    pub fn coefficient_rank(&self, node: usize) -> usize {
        self.coeff_rank[node] as usize
    }

    /// Basis row `r` (pivot order) of `node` as symbols — test and
    /// introspection surface, not the hot path.
    pub fn basis_row(&self, node: usize, r: usize) -> Vec<Gf256> {
        let st = &self.nodes[node];
        let slot = st.order[r] as usize;
        let row = &st.rows[slot * self.rw..(slot + 1) * self.rw];
        (0..self.ambient)
            .map(|i| Gf256(get_sym(row, self.w, i)))
            .collect()
    }

    /// Inserts `v` (a planar `ambient`-symbol packet) into `node`'s basis;
    /// returns `true` iff innovative. `v` is clobbered (it becomes the
    /// normalized new row). Identical math to `Subspace::insert` — in
    /// characteristic 2 the reduce/back-eliminate coefficient `-c` is `c`.
    fn insert(&mut self, node: usize, v: &mut [u64]) -> bool {
        let (k, w, rw) = (self.k, self.w, self.rw);
        let mut tmp = std::mem::take(&mut self.scratch2);
        let mut coeffs = std::mem::take(&mut self.cscratch);
        let mut acc = std::mem::take(&mut self.bacc);
        let st = &mut self.nodes[node];
        // Reduce against the basis in pivot order. Every stored row is
        // zero before its pivot column (the pivot is its leading index,
        // an invariant back-elimination preserves: a new pivot only ever
        // rewrites columns at or after itself in rows with smaller
        // pivots), so each axpy starts at the pivot's word — the
        // reference `Subspace` pays full-length row ops instead.
        let nrank = st.order.len();
        if nrank > 0 && st.pivots[nrank - 1] as usize == nrank - 1 {
            // Contiguous pivots 0..nrank — the overwhelmingly common
            // state, since a random in-span packet reduces to a leading
            // index at the first uncovered column w.p. 1 − 1/q. RREF
            // then pins each row's support to {own pivot} ∪ [nrank..):
            // every column < nrank is some row's pivot, and rows are
            // zero at every other row's pivot. Two consequences, both
            // bit-exact:
            //  * elimination coefficients never change mid-reduce
            //    (row j is zero at pivot i ≠ j), so they can all be
            //    gathered up front — word-wide via [`gather_syms`]
            //    instead of one masked plane read per symbol;
            //  * with the coefficients in hand the whole reduce is one
            //    XOR sum, `v ^= Σ_r c_r·row_r`, which bit-slicing
            //    regroups exactly: `c·row = Σ_b bit_b(c)·(x^b·row)`,
            //    so each row is XOR-folded into the accumulators of
            //    its coefficient's set bits — straight-line word XORs,
            //    no per-row plane-mask decode — and the eight monomial
            //    multiplications happen once at the end. XOR sums
            //    reassociate freely, so the result is bit-identical to
            //    the sequential reduce.
            gather_syms(v, w, nrank, &mut coeffs);
            if nrank >= BITSLICE_MIN_RANK {
                acc.fill(0);
                for (r, &c) in coeffs.iter().enumerate().take(nrank) {
                    if c != 0 {
                        let slot = st.order[r] as usize;
                        let row = &st.rows[slot * rw..(slot + 1) * rw];
                        let mut cb = c as u32;
                        while cb != 0 {
                            let b = cb.trailing_zeros() as usize;
                            cb &= cb - 1;
                            for (x, y) in acc[b * rw..(b + 1) * rw].iter_mut().zip(row) {
                                *x ^= *y;
                            }
                        }
                    }
                }
                for b in 0..8 {
                    plane_axpy(v, &acc[b * rw..(b + 1) * rw], 1 << b, w, 0);
                }
            } else {
                // Below the bit-slice break-even: per-row tail axpys
                // from lo = nrank/64 (columns < lo·64 are all pivots
                // and eliminate exactly to zero, so the prefix words
                // are zeroed wholesale).
                let lo = nrank / 64;
                for (r, &c) in coeffs.iter().enumerate().take(nrank) {
                    if c != 0 {
                        let slot = st.order[r] as usize;
                        plane_axpy(v, &st.rows[slot * rw..(slot + 1) * rw], c, w, lo);
                    }
                }
                for plane in 0..8 {
                    v[plane * w..plane * w + lo].fill(0);
                }
            }
        } else {
            for r in 0..nrank {
                let p = st.pivots[r] as usize;
                let c = get_sym(v, w, p);
                if c != 0 {
                    let slot = st.order[r] as usize;
                    plane_axpy(v, &st.rows[slot * rw..(slot + 1) * rw], c, w, p / 64);
                }
            }
        }
        let Some(p) = leading(v, w) else {
            self.scratch2 = tmp;
            self.cscratch = coeffs;
            self.bacc = acc;
            return false;
        };
        // Normalize the new pivot to 1: scale is axpy into a zero row
        // (`v` is zero before `p`, so the product is too).
        let inv = Gf256(get_sym(v, w, p))
            .inv()
            .expect("leading entry nonzero");
        tmp.fill(0);
        plane_axpy(&mut tmp, v, inv.0, w, p / 64);
        v.copy_from_slice(&tmp);
        // Back-eliminate the new pivot column from existing rows; `v` is
        // zero before `p`, so only words from `p` on can change. At high
        // rank this is bit-sliced the other way around: the eight
        // monomial products x^b·v are formed once, and each row XORs in
        // the products its coefficient's bits select — c·v is their
        // exact XOR sum.
        if st.order.len() >= BITSLICE_MIN_RANK {
            acc.fill(0);
            for b in 0..8 {
                plane_axpy(&mut acc[b * rw..(b + 1) * rw], v, 1 << b, w, p / 64);
            }
            for r in 0..st.order.len() {
                let slot = st.order[r] as usize;
                let row = &mut st.rows[slot * rw..(slot + 1) * rw];
                let mut cb = get_sym(row, w, p) as u32;
                while cb != 0 {
                    let b = cb.trailing_zeros() as usize;
                    cb &= cb - 1;
                    for (x, y) in row.iter_mut().zip(&acc[b * rw..(b + 1) * rw]) {
                        *x ^= *y;
                    }
                }
            }
        } else {
            for r in 0..st.order.len() {
                let slot = st.order[r] as usize;
                let row = &mut st.rows[slot * rw..(slot + 1) * rw];
                let c = get_sym(row, w, p);
                if c != 0 {
                    plane_axpy(row, v, c, w, p / 64);
                }
            }
        }
        // Insert keeping pivots sorted; the row data takes the next slot.
        let nrank = st.order.len();
        assert!(
            nrank < k,
            "rank overflow: packets must lie in the k-dimensional source span"
        );
        let idx = st.pivots.partition_point(|&q| (q as usize) < p);
        st.order.insert(idx, nrank as u32);
        st.pivots.insert(idx, p as u32);
        st.rows.extend_from_slice(v);
        if p < k {
            self.coeff_rank[node] += 1;
        }
        self.scratch2 = tmp;
        self.cscratch = coeffs;
        self.bacc = acc;
        true
    }

    fn node_done(&self, node: usize) -> bool {
        self.coeff_rank[node] as usize == self.k
    }
}

impl FastCell for Gf256Cell {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn spoke(&self, node: usize) -> bool {
        self.has_msg[node]
    }

    fn compose_all(
        &mut self,
        round: usize,
        rng: &mut StdRng,
        bit_limit: Option<u64>,
    ) -> (u64, u64) {
        let (w, rw) = (self.w, self.rw);
        let bits = self.ambient as u64 * Gf256::bits_per_symbol() as u64;
        let mut round_bits = 0u64;
        let mut round_max = 0u64;
        let mut msg = std::mem::take(&mut self.scratch);
        for u in 0..self.n {
            let st = &self.nodes[u];
            let nrank = st.order.len();
            if nrank == 0 {
                // Nothing received: stay silent and draw no coefficients,
                // exactly like the reference emit.
                self.has_msg[u] = false;
                continue;
            }
            msg.fill(0);
            if st.pivots[nrank - 1] as usize == nrank - 1 {
                // Contiguous-pivot shortcut (saturation is the nrank = k
                // case). With pivots exactly 0..nrank, RREF pins row j's
                // support to {j} ∪ [nrank..): the drawn coefficients ARE
                // the combination's first nrank symbols, and only the
                // tail words [lo·64..) need row arithmetic. A row whose
                // pivot bit sits inside the tail word range contributes
                // it through its axpy; pivots below lo·64 are set
                // directly — each column < nrank is touched by exactly
                // one row, so the disjoint writes compose exactly.
                let lo = nrank / 64;
                for j in 0..nrank {
                    // Same draw sequence as the general path.
                    let c = Gf256::random(rng);
                    if c.0 != 0 {
                        if j < lo * 64 {
                            set_sym(&mut msg, w, j, c.0);
                        }
                        let slot = st.order[j] as usize;
                        plane_axpy(&mut msg, &st.rows[slot * rw..(slot + 1) * rw], c.0, w, lo);
                    }
                }
            } else {
                for r in 0..nrank {
                    // One coefficient per basis row in pivot order — the
                    // draw sequence of `random_combination`; the axpy
                    // skips zero coefficients, as `scale_add` does, and
                    // starts at the row's pivot word (rows are zero
                    // before their pivot).
                    let c = Gf256::random(rng);
                    if c.0 != 0 {
                        let slot = st.order[r] as usize;
                        let p = st.pivots[r] as usize;
                        plane_axpy(
                            &mut msg,
                            &st.rows[slot * rw..(slot + 1) * rw],
                            c.0,
                            w,
                            p / 64,
                        );
                    }
                }
            }
            if let Some(limit) = bit_limit {
                assert!(
                    bits <= limit,
                    "node {u} exceeded the message budget at round {round}: \
                     {bits} > {limit} bits"
                );
            }
            round_bits += bits;
            round_max = round_max.max(bits);
            self.msgs[u * rw..(u + 1) * rw].copy_from_slice(&msg);
            self.has_msg[u] = true;
        }
        self.scratch = msg;
        (round_bits, round_max)
    }

    fn deliver_all(&mut self, topo: &CsrTopology, _round: usize, _rng: &mut StdRng) {
        let rw = self.rw;
        let timing = crate::phase::active();
        let mut scratch = std::mem::take(&mut self.scratch);
        for u in 0..self.n {
            // Saturation shortcut: at rank k the node holds the full
            // source span, so no insert can be innovative or change any
            // row (reducing an in-span vector yields zero), and inserts
            // draw no coins — skipping the inbox is bit-invisible.
            if self.nodes[u].order.len() == self.k {
                continue;
            }
            for &v in topo.neighbors(u) {
                let v = v as usize;
                if self.has_msg[v] {
                    scratch.copy_from_slice(&self.msgs[v * rw..(v + 1) * rw]);
                    if timing {
                        let t = std::time::Instant::now();
                        self.insert(u, &mut scratch);
                        crate::phase::elim_add(t.elapsed().as_nanos() as u64);
                    } else {
                        self.insert(u, &mut scratch);
                    }
                }
            }
        }
        self.scratch = scratch;
    }

    fn all_done(&self) -> bool {
        (0..self.n).all(|u| self.node_done(u))
    }

    fn view(&self) -> KnowledgeView {
        // Mirror of `FieldBroadcast::view`: all-or-nothing decodability.
        let tokens: Vec<BitSet> = (0..self.n)
            .map(|u| {
                let mut s = BitSet::new(self.k);
                if self.node_done(u) {
                    for i in 0..self.k {
                        s.insert(i);
                    }
                }
                s
            })
            .collect();
        KnowledgeView {
            dims: (0..self.n).map(|u| self.rank(u)).collect(),
            done: (0..self.n).map(|u| self.node_done(u)).collect(),
            tokens,
        }
    }

    fn history_stats(&self) -> (usize, usize, usize, usize) {
        let min_dim = (0..self.n).map(|u| self.rank(u)).min().unwrap_or(0);
        let max_dim = (0..self.n).map(|u| self.rank(u)).max().unwrap_or(0);
        let done = (0..self.n).filter(|&u| self.node_done(u)).count();
        (min_dim, max_dim, self.k * done, done)
    }

    fn fully_disseminated(&self) -> bool {
        self.all_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncode_gf::{vector, Subspace};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn planar_axpy_matches_symbolwise_axpy() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..50 {
            use rand::RngExt;
            let len = rng.random_range(1..200usize);
            let w = len.div_ceil(64);
            let src: Vec<Gf256> = (0..len).map(|_| Gf256::random(&mut rng)).collect();
            let mut dst: Vec<Gf256> = (0..len).map(|_| Gf256::random(&mut rng)).collect();
            let c = Gf256::random(&mut rng);
            let mut psrc = vec![0u64; 8 * w];
            let mut pdst = vec![0u64; 8 * w];
            for (i, s) in src.iter().enumerate() {
                set_sym(&mut psrc, w, i, s.0);
            }
            for (i, d) in dst.iter().enumerate() {
                set_sym(&mut pdst, w, i, d.0);
            }
            plane_axpy(&mut pdst, &psrc, c.0, w, 0);
            Gf256::axpy(&mut dst, &src, c);
            for (i, d) in dst.iter().enumerate() {
                assert_eq!(get_sym(&pdst, w, i), d.0, "symbol {i}, c={c:?}");
            }
        }
    }

    #[test]
    fn gather_syms_matches_per_symbol_reads() {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(43);
        for &(w, count) in &[(1usize, 1usize), (1, 64), (2, 65), (3, 100), (9, 517)] {
            let planes: Vec<u64> = (0..8 * w).map(|_| rng.random()).collect();
            let mut out = vec![0u8; count.div_ceil(64) * 64];
            gather_syms(&planes, w, count, &mut out);
            for (i, &b) in out.iter().enumerate().take(count) {
                assert_eq!(b, get_sym(&planes, w, i), "w={w} count={count} sym {i}");
            }
        }
    }

    #[test]
    fn planar_leading_matches_vector_leading_index() {
        let w = 3;
        let mut planes = vec![0u64; 8 * w];
        assert_eq!(leading(&planes, w), None);
        set_sym(&mut planes, w, 149, 0x40);
        assert_eq!(leading(&planes, w), Some(149));
        set_sym(&mut planes, w, 67, 0x01);
        assert_eq!(leading(&planes, w), Some(67));
        let symbols: Vec<Gf256> = (0..3 * 64).map(|i| Gf256(get_sym(&planes, w, i))).collect();
        assert_eq!(vector::leading_index(&symbols), Some(67));
    }

    /// Mirror of the reference basis: every insert must agree with
    /// `Subspace::insert` on innovation, rank, pivots, and row content.
    /// Inputs are random combinations of k source packets — the only
    /// vectors a run can deliver.
    #[test]
    fn insert_mirrors_subspace() {
        let (k, d) = (5, 7);
        let mut rng = StdRng::seed_from_u64(11);
        let sources: Vec<Vec<Gf256>> = (0..k)
            .map(|i| {
                let mut v = vec![Gf256::ZERO; k + d];
                v[i] = Gf256::ONE;
                for s in v[k..].iter_mut() {
                    *s = Gf256::random(&mut rng);
                }
                v
            })
            .collect();
        let mut cell = Gf256Cell::new(1, k, d);
        let mut reference: Subspace<Gf256> = Subspace::new(k + d);
        let w = cell.w;
        for _ in 0..60 {
            let mut v = vec![Gf256::ZERO; k + d];
            for s in &sources {
                Gf256::axpy(&mut v, s, Gf256::random(&mut rng));
            }
            let mut planar = vec![0u64; cell.rw];
            for (i, s) in v.iter().enumerate() {
                set_sym(&mut planar, w, i, s.0);
            }
            let fast = cell.insert(0, &mut planar);
            let slow = reference.insert(v);
            assert_eq!(fast, slow);
            assert_eq!(cell.rank(0), reference.dim());
            for (r, row) in reference.basis().iter().enumerate() {
                assert_eq!(&cell.basis_row(0, r), row, "row {r}");
            }
            assert_eq!(cell.coefficient_rank(0), reference.prefix_rank(k));
        }
    }

    /// Builds the planar image of a byte vector.
    fn to_planar(v: &[Gf256], w: usize) -> Vec<u64> {
        let mut planar = vec![0u64; 8 * w];
        for (i, s) in v.iter().enumerate() {
            set_sym(&mut planar, w, i, s.0);
        }
        planar
    }

    /// Contiguous pivots past the 64-symbol word boundary: combinations
    /// of sources 0..k−1 drive the contig reduce (lo = 1 once rank ≥ 64)
    /// and the partial contiguous-pivot compose shortcut at rank k−1;
    /// both must mirror the reference exactly.
    #[test]
    fn contiguous_pivots_across_word_boundary_mirror_subspace() {
        let (k, d) = (80, 5);
        let mut rng = StdRng::seed_from_u64(29);
        let sources: Vec<Vec<Gf256>> = (0..k)
            .map(|i| {
                let mut v = vec![Gf256::ZERO; k + d];
                v[i] = Gf256::ONE;
                for s in v[k..].iter_mut() {
                    *s = Gf256::random(&mut rng);
                }
                v
            })
            .collect();
        let mut cell = Gf256Cell::new(1, k, d);
        let mut reference: Subspace<Gf256> = Subspace::new(k + d);
        // Combinations that exclude the last source: pivots fill 0..k−1
        // contiguously, never saturating, and rank crosses 64.
        for _ in 0..90 {
            let mut v = vec![Gf256::ZERO; k + d];
            for s in sources.iter().take(k - 1) {
                Gf256::axpy(&mut v, s, Gf256::random(&mut rng));
            }
            let mut planar = to_planar(&v, cell.w);
            assert_eq!(cell.insert(0, &mut planar), reference.insert(v));
            assert_eq!(cell.rank(0), reference.dim());
            for (r, row) in reference.basis().iter().enumerate() {
                assert_eq!(&cell.basis_row(0, r), row, "row {r}");
            }
        }
        assert_eq!(cell.rank(0), k - 1, "contiguous partial rank");
        // Compose at contiguous rank k−1 < k (lo = 1): the shortcut must
        // equal the explicit per-row combination under the same draws.
        let mut rng_a = StdRng::seed_from_u64(31);
        let mut rng_b = rng_a.clone();
        let mut expect = vec![Gf256::ZERO; k + d];
        for r in 0..cell.rank(0) {
            let row = cell.basis_row(0, r);
            let c = Gf256::random(&mut rng_a);
            vector::scale_add(&mut expect, &row, c);
        }
        cell.compose_all(0, &mut rng_b, None);
        let msg = &cell.msgs[..cell.rw];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(get_sym(msg, cell.w, i), e.0, "symbol {i}");
        }
    }

    /// A pivot gap (no source 0 yet) forces the non-contiguous fallback
    /// at every rank — including past the word boundary — and filling
    /// the gap later re-enables the contiguous path; the basis must
    /// mirror the reference throughout.
    #[test]
    fn pivot_gap_falls_back_and_refills_mirroring_subspace() {
        let (k, d) = (80, 5);
        let mut rng = StdRng::seed_from_u64(37);
        let sources: Vec<Vec<Gf256>> = (0..k)
            .map(|i| {
                let mut v = vec![Gf256::ZERO; k + d];
                v[i] = Gf256::ONE;
                for s in v[k..].iter_mut() {
                    *s = Gf256::random(&mut rng);
                }
                v
            })
            .collect();
        let mut cell = Gf256Cell::new(1, k, d);
        let mut reference: Subspace<Gf256> = Subspace::new(k + d);
        let check = |cell: &mut Gf256Cell, reference: &mut Subspace<Gf256>, v: Vec<Gf256>| {
            let mut planar = to_planar(&v, cell.w);
            assert_eq!(cell.insert(0, &mut planar), reference.insert(v));
            assert_eq!(cell.rank(0), reference.dim());
            for (r, row) in reference.basis().iter().enumerate() {
                assert_eq!(&cell.basis_row(0, r), row, "row {r}");
            }
        };
        // Phase 1: combinations that skip source 0 — pivots 1..k, a gap
        // at column 0, so every reduce takes the general path.
        for _ in 0..90 {
            let mut v = vec![Gf256::ZERO; k + d];
            for s in &sources[1..] {
                Gf256::axpy(&mut v, s, Gf256::random(&mut rng));
            }
            check(&mut cell, &mut reference, v);
        }
        assert_eq!(cell.rank(0), k - 1, "gapped basis at rank k-1");
        // Phase 2: combinations including source 0 fill the gap (pivot 0)
        // and saturate; inserts after saturation reduce to zero.
        for _ in 0..4 {
            let mut v = vec![Gf256::ZERO; k + d];
            for s in &sources {
                Gf256::axpy(&mut v, s, Gf256::random(&mut rng));
            }
            check(&mut cell, &mut reference, v);
        }
        assert_eq!(cell.rank(0), k, "gap filled, saturated");
        assert_eq!(cell.coefficient_rank(0), k);
    }

    /// The saturated compose (rank k, k % 64 == 0) must emit the same
    /// planar message as the general per-row combination under the same
    /// draws.
    #[test]
    fn saturated_compose_matches_general_combination() {
        let (k, d) = (64, 3);
        let mut rng = StdRng::seed_from_u64(17);
        let mut cell = Gf256Cell::new(1, k, d);
        for i in 0..k {
            let payload: Vec<Gf256> = (0..d).map(|_| Gf256::random(&mut rng)).collect();
            cell.seed_source(0, i, &payload);
        }
        assert_eq!(cell.rank(0), k, "node saturated");
        // General combination from the extracted rows, with a cloned rng.
        let mut rng_a = StdRng::seed_from_u64(23);
        let mut rng_b = rng_a.clone();
        let mut expect = vec![Gf256::ZERO; k + d];
        for r in 0..k {
            let row = cell.basis_row(0, r);
            let c = Gf256::random(&mut rng_a);
            vector::scale_add(&mut expect, &row, c);
        }
        let (bits, maxb) = cell.compose_all(0, &mut rng_b, None);
        assert_eq!(bits, (k + d) as u64 * 8);
        assert_eq!(maxb, bits);
        {
            use rand::RngExt as _;
            let a: u64 = rng_a.random();
            let b: u64 = rng_b.random();
            assert_eq!(a, b, "draw counts must match");
        }
        let msg = &cell.msgs[..cell.rw];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(get_sym(msg, cell.w, i), e.0, "symbol {i}");
        }
    }

    #[test]
    fn seeded_sources_make_node_decodable() {
        let (k, d) = (4, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let payloads: Vec<Vec<Gf256>> = (0..k)
            .map(|_| (0..d).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let mut cell = Gf256Cell::new(2, k, d);
        for (i, p) in payloads.iter().enumerate() {
            cell.seed_source(0, i, p);
        }
        assert_eq!(cell.rank(0), k);
        assert_eq!(cell.coefficient_rank(0), k);
        assert!(!cell.all_done(), "node 1 has nothing yet");
        let v = cell.view();
        assert_eq!(v.dims, vec![k, 0]);
        assert_eq!(v.tokens[0].len(), k, "done view is all-or-nothing");
        assert!(v.tokens[1].is_empty());
        assert_eq!(cell.history_stats(), (0, k, k, 1));
    }

    #[test]
    fn zero_packet_is_never_innovative() {
        let mut cell = Gf256Cell::new(1, 3, 2);
        let mut zero = vec![0u64; cell.rw];
        assert!(!cell.insert(0, &mut zero));
        assert_eq!(cell.rank(0), 0);
    }
}
