//! Property tests for the delivery-spec grammar: `parse ∘ Display = id`
//! over the whole model registry, so campaign text, CLI flags, store
//! keys, and artifact meta all agree on one canonical string per model.

use dyncode_delivery::DeliverySpec;
use proptest::prelude::*;

/// Arbitrary valid specs; per-mille integers keep the float rendering
/// exact, so canonical strings round-trip without precision loss.
fn spec() -> BoxedStrategy<DeliverySpec> {
    prop_oneof![
        Just(DeliverySpec::Reliable),
        (1u32..=1000).prop_map(|p| DeliverySpec::Radio {
            p: p as f64 / 1000.0,
            spont: 0.0,
        }),
        (1u32..=1000, 1u32..1000).prop_map(|(p, s)| DeliverySpec::Radio {
            p: p as f64 / 1000.0,
            spont: s as f64 / 1000.0,
        }),
        (0u32..1000).prop_map(|e| DeliverySpec::Lossy {
            eps: e as f64 / 1000.0,
        }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ Display = id: a spec re-parsed from its canonical string
    /// is the same spec, and re-rendering is a fixed point.
    #[test]
    fn canonical_strings_round_trip(s in spec()) {
        let text = s.to_string();
        let reparsed = DeliverySpec::parse(&text).expect("canonical string re-parses");
        prop_assert_eq!(&reparsed, &s);
        prop_assert_eq!(reparsed.to_string(), text);
    }

    /// Whitespace-padded forms parse to the same spec as the canonical
    /// string (campaign text is written by hand).
    #[test]
    fn padded_strings_parse_to_the_same_spec(s in spec()) {
        let text = format!("  {}  ", s);
        prop_assert_eq!(DeliverySpec::parse(&text).expect("padded"), s);
    }
}
