//! # dyncode-delivery
//!
//! Pluggable delivery semantics for the round-synchronous simulator: the
//! layer between *compose* (nodes speak, neighbor-blind) and *deliver*
//! (nodes hear their neighbors) that decides which broadcasts actually
//! arrive. Three models:
//!
//! * **`reliable`** — the classic KLO semantics and the default: every
//!   message reaches every current neighbor. The simulator keeps its
//!   legacy code path for this model, byte-identical to the pre-layer
//!   round loop.
//! * **`radio(p=…[,spont=…])`** — a radio/collision channel after
//!   Czumaj & Davies: a node with a message transmits with probability
//!   `p` each round; a receiver hears a message only when it is not
//!   itself on air and **exactly one** of its neighbors transmitted.
//!   With `spont > 0`, silent nodes also key up spontaneously with that
//!   probability — pure interference that can only cause collisions.
//! * **`lossy(eps=…)`** — i.i.d. per-edge-per-round erasure: each
//!   directed (receiver, sender) delivery is independently lost with
//!   probability `eps`.
//!
//! ## The private delivery RNG stream
//!
//! All delivery coins come from [`delivery_rng`], a stream derived from
//! the run seed but domain-separated from both the protocol's RNG and the
//! adversary's ([`DELIVERY_STREAM`]). Swapping delivery models therefore
//! never perturbs protocol or topology randomness — which is what keeps
//! `.dct` record→replay bit-exact under `radio`/`lossy`, and what makes
//! `lossy(eps=0)` produce the *identical* `RunResult` to `reliable`.
//!
//! ## Determinism contract
//!
//! [`DeliveryModel::plan_round`] draws coins in a fixed order that is a
//! pure function of `(round topology, who spoke)`: radio draws one coin
//! per node in ascending node order (message-holders draw the `p` coin,
//! silent nodes draw the `spont` coin only when `spont > 0`), lossy draws
//! one coin per *speaking* neighbor in receiver-major ascending order.
//! Both the reference simulator and the fast kernel call the same planner
//! over the same topology view, so fast == reference stays bit-exact.
//!
//! Per-round accounting lands in `dyncode-obs` counters
//! `delivery.{sent,delivered,collided,dropped}` (directed pairs, so
//! `sent == delivered + collided + dropped` holds exactly) plus a
//! `delivery.collisions_per_round` histogram for radio runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dyncode_obs::metrics::{counter, histogram, Counter, Histogram};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// Domain-separation constant for the delivery layer's private RNG
/// stream (an arbitrary odd 64-bit constant, distinct from the
/// adversary's `0x9E37_79B9_7F4A_7C15`).
pub const DELIVERY_STREAM: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// The delivery layer's private RNG for `seed` — the exact stream the
/// simulator hands to [`DeliveryModel::plan_round`], domain-separated
/// from the protocol's and the adversary's so delivery coins never
/// perturb either.
pub fn delivery_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ DELIVERY_STREAM)
}

/// A parsed delivery-model spec, in the registry style of
/// `ProtocolSpec`: [`DeliverySpec::parse`] ∘ [`DeliverySpec::name`] is
/// the identity on canonical strings.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum DeliverySpec {
    /// Every broadcast reaches every current neighbor (the default; the
    /// simulator's legacy code path, byte-identical to pre-layer runs).
    #[default]
    Reliable,
    /// Radio/collision channel: transmit with probability `p`, lose on
    /// simultaneous neighbors; silent nodes key up with probability
    /// `spont` (0 disables spontaneous transmissions).
    Radio {
        /// Per-round transmission probability for a node with a message.
        p: f64,
        /// Per-round spontaneous-transmission probability for a silent
        /// node (interference only; delivers nothing).
        spont: f64,
    },
    /// I.i.d. per-edge-per-round erasure with probability `eps`.
    Lossy {
        /// Per-delivery erasure probability.
        eps: f64,
    },
}

/// The one-line grammar summary used by parse errors and the CLI
/// registry listing.
pub const VALID_MODELS: &str = "reliable, radio(p=..[,spont=..]), lossy(eps=..)";

/// The delivery-model registry rows: `(grammar, description)`, for the
/// CLI registry listings alongside protocols and adversaries.
pub fn registry() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "reliable",
            "every broadcast reaches every current neighbor (default)",
        ),
        (
            "radio(p=..[,spont=..])",
            "transmit w.p. p; heard only when exactly one neighbor is on air",
        ),
        (
            "lossy(eps=..)",
            "each directed delivery independently erased w.p. eps",
        ),
    ]
}

fn parse_prob(model: &str, key: &str, val: &str) -> Result<f64, String> {
    let x: f64 = val
        .parse()
        .map_err(|_| format!("{model}: {key} must be a number, got {val:?}"))?;
    if !x.is_finite() {
        return Err(format!("{model}: {key} must be finite, got {val:?}"));
    }
    Ok(x)
}

/// Splits `radio(p=0.5,spont=0.1)`-style args into `(key, value)` pairs.
fn named_args<'a>(model: &str, inner: &'a str) -> Result<Vec<(&'a str, &'a str)>, String> {
    inner
        .split(',')
        .map(|part| {
            part.split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("{model}: expected key=value, got {:?}", part.trim()))
        })
        .collect()
}

impl DeliverySpec {
    /// Parses a delivery-model spec string. Unknown model names
    /// enumerate the registry, matching the campaign parser's error
    /// style.
    pub fn parse(s: &str) -> Result<DeliverySpec, String> {
        let s = s.trim();
        if s == "reliable" {
            return Ok(DeliverySpec::Reliable);
        }
        if let Some(inner) = s.strip_prefix("radio(").and_then(|r| r.strip_suffix(')')) {
            let (mut p, mut spont) = (None, 0.0);
            for (k, v) in named_args("radio", inner)? {
                match k {
                    "p" => p = Some(parse_prob("radio", "p", v)?),
                    "spont" => spont = parse_prob("radio", "spont", v)?,
                    _ => return Err(format!("radio: unknown parameter {k:?} (valid: p, spont)")),
                }
            }
            let p = p.ok_or("radio: missing required parameter p".to_string())?;
            if !(p > 0.0 && p <= 1.0) {
                return Err(format!("radio: p must be in (0, 1], got {p}"));
            }
            if !(0.0..1.0).contains(&spont) {
                return Err(format!("radio: spont must be in [0, 1), got {spont}"));
            }
            return Ok(DeliverySpec::Radio { p, spont });
        }
        if let Some(inner) = s.strip_prefix("lossy(").and_then(|r| r.strip_suffix(')')) {
            let mut eps = None;
            for (k, v) in named_args("lossy", inner)? {
                match k {
                    "eps" => eps = Some(parse_prob("lossy", "eps", v)?),
                    _ => return Err(format!("lossy: unknown parameter {k:?} (valid: eps)")),
                }
            }
            let eps = eps.ok_or("lossy: missing required parameter eps".to_string())?;
            if !(0.0..1.0).contains(&eps) {
                return Err(format!("lossy: eps must be in [0, 1), got {eps}"));
            }
            return Ok(DeliverySpec::Lossy { eps });
        }
        Err(format!(
            "unknown delivery model {s:?} (valid: {VALID_MODELS})"
        ))
    }

    /// The canonical spec string ([`DeliverySpec::parse`] inverts it).
    /// `spont = 0` is elided, so the canonical form is minimal.
    pub fn name(&self) -> String {
        self.to_string()
    }

    /// Is this the default (`reliable`) model? Default cells elide the
    /// delivery spec from campaign labels, artifact meta, and store keys,
    /// which is what keeps pre-layer baselines and caches byte-valid.
    pub fn is_default(&self) -> bool {
        matches!(self, DeliverySpec::Reliable)
    }

    /// Builds the round planner for a run, or `None` for `reliable`
    /// (callers take the legacy delivery path, which draws no coins).
    pub fn model(&self, seed: u64) -> Option<DeliveryModel> {
        if self.is_default() {
            return None;
        }
        Some(DeliveryModel::new(self.clone(), seed))
    }
}

impl fmt::Display for DeliverySpec {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliverySpec::Reliable => write!(fm, "reliable"),
            DeliverySpec::Radio { p, spont } if *spont == 0.0 => write!(fm, "radio(p={p})"),
            DeliverySpec::Radio { p, spont } => write!(fm, "radio(p={p},spont={spont})"),
            DeliverySpec::Lossy { eps } => write!(fm, "lossy(eps={eps})"),
        }
    }
}

/// Read access to one round's committed topology: visit `u`'s neighbors
/// in ascending order. Implemented by `dyncode-dynet`'s `Graph` and the
/// fast kernel's `CsrTopology`, so both backends feed the planner the
/// identical neighbor sequence (the determinism contract hinges on it).
pub trait NeighborView {
    /// Calls `visit` for each neighbor of `u`, ascending.
    fn for_each_neighbor(&self, u: usize, visit: &mut dyn FnMut(usize));
}

/// Per-run delivery totals over directed `(receiver, sender)` pairs.
/// `sent == delivered + collided + dropped` holds exactly: every pair
/// whose sender composed a message lands in exactly one bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Pairs whose sender composed a message this round.
    pub sent: u64,
    /// Pairs actually heard.
    pub delivered: u64,
    /// Pairs lost to collision or the receiver's own transmission
    /// (radio only).
    pub collided: u64,
    /// Pairs suppressed before the air: the sender's `p` coin failed
    /// (radio) or the edge erased (lossy).
    pub dropped: u64,
}

/// The per-run round planner for a non-`reliable` [`DeliverySpec`]: owns
/// the private delivery RNG and, each round, turns (who spoke, the
/// committed topology) into the delivered-sender list per receiver.
pub struct DeliveryModel {
    spec: DeliverySpec,
    rng: StdRng,
    /// Radio scratch: node is on air at all (message or noise).
    on_air: Vec<bool>,
    /// Radio scratch: node is on air with a message.
    with_msg: Vec<bool>,
    /// `offsets[u]..offsets[u+1]` indexes `senders` with the neighbors
    /// receiver `u` hears this round, ascending.
    offsets: Vec<u32>,
    senders: Vec<u32>,
    stats: DeliveryStats,
    c_sent: &'static Counter,
    c_delivered: &'static Counter,
    c_collided: &'static Counter,
    c_dropped: &'static Counter,
    h_collisions: &'static Histogram,
}

impl DeliveryModel {
    /// A planner for `spec` drawing from [`delivery_rng`]`(seed)`.
    ///
    /// # Panics
    /// Panics on `reliable` — the default model has no planner; callers
    /// go through [`DeliverySpec::model`].
    pub fn new(spec: DeliverySpec, seed: u64) -> DeliveryModel {
        assert!(
            !spec.is_default(),
            "reliable delivery has no planner (legacy path)"
        );
        DeliveryModel {
            spec,
            rng: delivery_rng(seed),
            on_air: Vec::new(),
            with_msg: Vec::new(),
            offsets: vec![0],
            senders: Vec::new(),
            stats: DeliveryStats::default(),
            c_sent: counter("delivery.sent"),
            c_delivered: counter("delivery.delivered"),
            c_collided: counter("delivery.collided"),
            c_dropped: counter("delivery.dropped"),
            h_collisions: histogram("delivery.collisions_per_round"),
        }
    }

    /// The spec this planner runs.
    pub fn spec(&self) -> &DeliverySpec {
        &self.spec
    }

    /// Plans one round: `speaks[u]` says whether node `u` composed a
    /// message, `topo` is the adversary's committed topology. Coins are
    /// drawn in the fixed order documented at the crate root; afterwards
    /// [`DeliveryModel::hears`] gives each receiver's delivered senders.
    pub fn plan_round<T: NeighborView + ?Sized>(&mut self, speaks: &[bool], topo: &T) {
        let n = speaks.len();
        self.offsets.clear();
        self.offsets.push(0);
        self.senders.clear();
        let mut round = DeliveryStats::default();
        match self.spec {
            DeliverySpec::Reliable => unreachable!("no planner for reliable"),
            DeliverySpec::Radio { p, spont } => {
                self.on_air.clear();
                self.on_air.resize(n, false);
                self.with_msg.clear();
                self.with_msg.resize(n, false);
                // One coin per node, ascending: the p coin for speakers,
                // the spont coin for silent nodes (skipped at spont = 0).
                for (u, &speaking) in speaks.iter().enumerate() {
                    if speaking {
                        let t = self.rng.random_bool(p);
                        self.with_msg[u] = t;
                        self.on_air[u] = t;
                    } else if spont > 0.0 {
                        self.on_air[u] = self.rng.random_bool(spont);
                    }
                }
                for u in 0..n {
                    let (mut active, mut msgs, mut only) = (0u32, 0u64, 0usize);
                    topo.for_each_neighbor(u, &mut |v| {
                        if speaks[v] {
                            round.sent += 1;
                            if !self.with_msg[v] {
                                round.dropped += 1;
                            }
                        }
                        if self.on_air[v] {
                            active += 1;
                            if self.with_msg[v] {
                                msgs += 1;
                                only = v;
                            }
                        }
                    });
                    // Half-duplex: a node on air hears nothing; otherwise
                    // exactly one active neighbor (carrying a message, not
                    // noise) gets through.
                    if !self.on_air[u] && active == 1 && msgs == 1 {
                        self.senders.push(only as u32);
                        round.delivered += 1;
                    } else {
                        round.collided += msgs;
                    }
                    self.offsets.push(self.senders.len() as u32);
                }
                self.h_collisions.record(round.collided);
            }
            DeliverySpec::Lossy { eps } => {
                // One coin per speaking neighbor, receiver-major
                // ascending.
                for u in 0..n {
                    topo.for_each_neighbor(u, &mut |v| {
                        if speaks[v] {
                            round.sent += 1;
                            if self.rng.random_bool(eps) {
                                round.dropped += 1;
                            } else {
                                self.senders.push(v as u32);
                                round.delivered += 1;
                            }
                        }
                    });
                    self.offsets.push(self.senders.len() as u32);
                }
            }
        }
        self.stats.sent += round.sent;
        self.stats.delivered += round.delivered;
        self.stats.collided += round.collided;
        self.stats.dropped += round.dropped;
        self.c_sent.add(round.sent);
        self.c_delivered.add(round.delivered);
        self.c_collided.add(round.collided);
        self.c_dropped.add(round.dropped);
    }

    /// The senders receiver `u` hears this round, ascending.
    pub fn hears(&self, u: usize) -> &[u32] {
        &self.senders[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// The plan's receiver-major offsets (CSR row bounds), for building
    /// a masked topology snapshot in the fast kernel.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The plan's flattened delivered-sender list (CSR targets).
    pub fn senders(&self) -> &[u32] {
        &self.senders
    }

    /// Cumulative per-run totals (the same numbers the
    /// `delivery.{sent,delivered,collided,dropped}` counters receive).
    pub fn stats(&self) -> DeliveryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adjacency-list topology for tests.
    struct Adj(Vec<Vec<usize>>);
    impl NeighborView for Adj {
        fn for_each_neighbor(&self, u: usize, visit: &mut dyn FnMut(usize)) {
            for &v in &self.0[u] {
                visit(v);
            }
        }
    }

    fn star() -> Adj {
        // 0 is the hub of a 4-leaf star.
        Adj(vec![vec![1, 2, 3, 4], vec![0], vec![0], vec![0], vec![0]])
    }

    #[test]
    fn parse_canonical_round_trips() {
        for s in [
            "reliable",
            "radio(p=0.5)",
            "radio(p=1,spont=0.25)",
            "lossy(eps=0.1)",
        ] {
            let spec = DeliverySpec::parse(s).unwrap();
            assert_eq!(spec.name(), s);
            assert_eq!(DeliverySpec::parse(&spec.name()).unwrap(), spec);
        }
        // spont = 0 is elided from the canonical form.
        assert_eq!(
            DeliverySpec::parse("radio(p=0.5,spont=0)").unwrap().name(),
            "radio(p=0.5)"
        );
    }

    #[test]
    fn parse_rejects_bad_specs_with_registry_errors() {
        let err = DeliverySpec::parse("carrier-pigeon").unwrap_err();
        assert!(err.contains("unknown delivery model"), "{err}");
        assert!(err.contains(VALID_MODELS), "{err}");
        assert!(DeliverySpec::parse("radio(p=0)").is_err());
        assert!(DeliverySpec::parse("radio(p=1.5)").is_err());
        assert!(
            DeliverySpec::parse("radio(spont=0.1)").is_err(),
            "p required"
        );
        assert!(DeliverySpec::parse("radio(p=0.5,q=1)").is_err());
        assert!(DeliverySpec::parse("lossy(eps=1)").is_err());
        assert!(DeliverySpec::parse("lossy(eps=nope)").is_err());
        assert!(DeliverySpec::parse("lossy(0.1)").is_err(), "named only");
    }

    #[test]
    fn reliable_has_no_planner() {
        assert!(DeliverySpec::Reliable.model(7).is_none());
        assert!(DeliverySpec::parse("lossy(eps=0.5)")
            .unwrap()
            .model(7)
            .is_some());
    }

    #[test]
    fn lossy_eps_zero_delivers_everything() {
        let mut m = DeliverySpec::Lossy { eps: 0.0 }.model(1).unwrap();
        let speaks = [true, true, false, true, false];
        m.plan_round(&speaks, &star());
        assert_eq!(m.hears(0), &[1, 3]);
        assert_eq!(m.hears(1), &[0]);
        assert_eq!(m.hears(2), &[0]);
        let s = m.stats();
        assert_eq!(s.sent, s.delivered);
        assert_eq!((s.collided, s.dropped), (0, 0));
    }

    #[test]
    fn radio_p_one_collides_at_the_hub() {
        // Everyone with a message transmits deterministically (p = 1):
        // the hub sees two simultaneous leaves (collision), speaking
        // leaves are themselves on air (half-duplex), but the two silent
        // leaves hear the hub cleanly.
        let mut m = DeliverySpec::Radio { p: 1.0, spont: 0.0 }.model(1).unwrap();
        let speaks = [true, true, true, false, false];
        m.plan_round(&speaks, &star());
        for u in 0..3 {
            assert_eq!(m.hears(u), &[] as &[u32], "receiver {u}");
        }
        assert_eq!(m.hears(3), &[0]);
        assert_eq!(m.hears(4), &[0]);
        let s = m.stats();
        // Pairs: hub sees {1,2}, leaves 1..4 each see the hub → 6 sent.
        assert_eq!(s.sent, 6);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.collided, 4);
    }

    #[test]
    fn radio_single_speaker_at_p_one_is_heard_by_all() {
        let mut m = DeliverySpec::Radio { p: 1.0, spont: 0.0 }.model(1).unwrap();
        let speaks = [true, false, false, false, false];
        m.plan_round(&speaks, &star());
        for u in 1..5 {
            assert_eq!(m.hears(u), &[0], "leaf {u}");
        }
        assert_eq!(m.hears(0), &[] as &[u32]);
        assert_eq!(m.stats().delivered, 4);
        assert_eq!(m.stats().sent, 4);
    }

    #[test]
    fn accounting_partitions_sent_pairs() {
        // Random speakers over a random-ish dense topology: the invariant
        // sent == delivered + collided + dropped must hold exactly.
        let n = 17;
        let mut adj = vec![Vec::new(); n];
        for (u, row) in adj.iter_mut().enumerate() {
            for v in 0..n {
                if u != v && (u + v) % 3 != 0 {
                    row.push(v);
                }
            }
        }
        let topo = Adj(adj);
        for spec in [
            DeliverySpec::Radio { p: 0.6, spont: 0.2 },
            DeliverySpec::Lossy { eps: 0.3 },
        ] {
            let mut m = spec.model(42).unwrap();
            for round in 0..50 {
                let speaks: Vec<bool> = (0..n).map(|u| (u * 7 + round) % 3 != 1).collect();
                m.plan_round(&speaks, &topo);
            }
            let s = m.stats();
            assert_eq!(
                s.sent,
                s.delivered + s.collided + s.dropped,
                "{spec}: {s:?}"
            );
            assert!(s.sent > 0);
        }
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let spec = DeliverySpec::Radio { p: 0.5, spont: 0.1 };
        let run = || {
            let mut m = spec.model(9).unwrap();
            let mut all = Vec::new();
            for round in 0..20 {
                let speaks: Vec<bool> = (0..5).map(|u| (u + round) % 2 == 0).collect();
                m.plan_round(&speaks, &star());
                all.push(m.senders().to_vec());
            }
            all
        };
        assert_eq!(run(), run());
    }
}
