//! The `.dct` (**d**yn**c**ode **t**race) compact binary trace format:
//! a topology schedule as delta-encoded edge flips, streamable in both
//! directions so million-round traces never materialize in memory.
//!
//! ## Layout
//!
//! ```text
//! header (24 bytes, fixed):
//!   0   magic  "DCT1"                      4 bytes
//!   4   n      node count                  u32 LE
//!   8   rounds round count                 u64 LE   (patched by finish())
//!   16  seed   provenance seed             u64 LE
//! then one frame per round:
//!   varint  flip count F
//!   varint  first flip edge id             (absent when F = 0)
//!   varint  gap to next flip id, F−1 times (strictly positive)
//! ```
//!
//! A *flip* toggles one edge relative to the previous round (round 0
//! flips against the empty graph); flip ids are the canonical edge ids of
//! [`dyncode_dynet::trace::edge_id`], sorted ascending and delta-coded as
//! gaps, then LEB128-varint'd — an unchanged round costs one byte, and a
//! slowly churning network costs a few bytes per round regardless of its
//! density.

use dyncode_dynet::graph::Graph;
use dyncode_dynet::trace::{edge_ids, graph_from_ids, symm_diff, DeltaTrace};
use std::io::{self, Read, Seek, SeekFrom, Write};

/// The 4-byte magic prefix.
pub const MAGIC: [u8; 4] = *b"DCT1";

/// Fixed header length in bytes.
pub const HEADER_LEN: u64 = 24;

/// Byte offset of the `rounds` field (patched by [`DctWriter::finish`]).
const ROUNDS_OFFSET: u64 = 8;

/// The `.dct` file header: node count, round count, provenance seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DctHeader {
    /// Node count of every graph in the trace.
    pub n: usize,
    /// Number of recorded rounds.
    pub rounds: u64,
    /// The seed the trace was recorded from (provenance only; replay
    /// ignores it).
    pub seed: u64,
}

impl DctHeader {
    fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&MAGIC)?;
        let n = u32::try_from(self.n)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "n exceeds u32"))?;
        w.write_all(&n.to_le_bytes())?;
        w.write_all(&self.rounds.to_le_bytes())?;
        w.write_all(&self.seed.to_le_bytes())
    }

    fn read_from<R: Read>(r: &mut R) -> io::Result<DctHeader> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(corrupt("bad magic: not a .dct file"));
        }
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4)?;
        let n = u32::from_le_bytes(b4) as usize;
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let rounds = u64::from_le_bytes(b8);
        r.read_exact(&mut b8)?;
        let seed = u64::from_le_bytes(b8);
        Ok(DctHeader { n, rounds, seed })
    }
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Writes `x` as an LEB128 varint.
fn write_varint<W: Write>(w: &mut W, mut x: u64) -> io::Result<()> {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads an LEB128 varint (at most 10 bytes for a u64).
fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut x = 0u64;
    for shift in (0..64).step_by(7) {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        x |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(x);
        }
    }
    Err(corrupt("varint longer than 10 bytes"))
}

/// Streaming `.dct` writer: push graphs (or pre-computed flip lists) one
/// round at a time; nothing but the previous round's edge ids is held in
/// memory. [`DctWriter::finish`] patches the round count into the header,
/// which is why the sink must [`Seek`] (a `File` or an in-memory
/// `Cursor`).
pub struct DctWriter<W: Write + Seek> {
    w: W,
    n: usize,
    rounds: u64,
    last: Vec<u64>,
}

impl<W: Write + Seek> DctWriter<W> {
    /// Starts a trace for graphs on `n` nodes, stamping `seed` into the
    /// header for provenance.
    pub fn new(mut w: W, n: usize, seed: u64) -> io::Result<Self> {
        DctHeader { n, rounds: 0, seed }.write_to(&mut w)?;
        Ok(DctWriter {
            w,
            n,
            rounds: 0,
            last: Vec::new(),
        })
    }

    /// Rounds written so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Appends one round given its graph (diffs against the previous
    /// round internally).
    ///
    /// # Panics
    /// Panics if `g` is not on `n` nodes.
    pub fn push(&mut self, g: &Graph) -> io::Result<()> {
        assert_eq!(g.num_nodes(), self.n, "graph size mismatch");
        let ids = edge_ids(g);
        let flips = symm_diff(&self.last, &ids);
        self.write_frame(&flips)?;
        self.last = ids;
        self.rounds += 1;
        Ok(())
    }

    /// Appends one round given its sorted, duplicate-free flip list
    /// (relative to the previous round) directly.
    pub fn push_flips(&mut self, flips: &[u64]) -> io::Result<()> {
        debug_assert!(flips.windows(2).all(|w| w[0] < w[1]), "flips not sorted");
        self.write_frame(flips)?;
        self.last = symm_diff(&self.last, flips);
        self.rounds += 1;
        Ok(())
    }

    fn write_frame(&mut self, flips: &[u64]) -> io::Result<()> {
        write_varint(&mut self.w, flips.len() as u64)?;
        let mut prev = 0u64;
        for (i, &id) in flips.iter().enumerate() {
            let delta = if i == 0 { id } else { id - prev };
            write_varint(&mut self.w, delta)?;
            prev = id;
        }
        Ok(())
    }

    /// Patches the round count into the header, flushes, and returns the
    /// sink. Dropping a writer without calling this leaves a trace whose
    /// header claims zero rounds.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.seek(SeekFrom::Start(ROUNDS_OFFSET))?;
        self.w.write_all(&self.rounds.to_le_bytes())?;
        self.w.seek(SeekFrom::End(0))?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Streaming `.dct` reader: decodes one round per call, holding only the
/// current edge set — a million-round trace is replayed in O(edges)
/// memory.
pub struct DctReader<R: Read> {
    r: R,
    header: DctHeader,
    edges: Vec<u64>,
    consumed: u64,
}

impl<R: Read> DctReader<R> {
    /// Opens a trace, reading and validating the header.
    pub fn new(mut r: R) -> io::Result<Self> {
        let header = DctHeader::read_from(&mut r)?;
        Ok(DctReader {
            r,
            header,
            edges: Vec::new(),
            consumed: 0,
        })
    }

    /// The trace header.
    pub fn header(&self) -> &DctHeader {
        &self.header
    }

    /// Rounds decoded so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Edge count of the most recently decoded round (0 before the
    /// first) — the same live edge set the replay materializes, exposed
    /// so stats consumers don't re-derive it from flip lists.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Decodes the next round's flip list, or `None` at the end of the
    /// trace. Validates monotonicity and the edge-id range.
    pub fn next_flips(&mut self) -> io::Result<Option<Vec<u64>>> {
        if self.consumed >= self.header.rounds {
            return Ok(None);
        }
        let count = read_varint(&mut self.r)?;
        let max_id = (self.header.n as u64) * (self.header.n as u64).saturating_sub(1) / 2;
        let mut flips = Vec::with_capacity(count.min(1 << 20) as usize);
        let mut prev = 0u64;
        for i in 0..count {
            let delta = read_varint(&mut self.r)?;
            if i > 0 && delta == 0 {
                return Err(corrupt("zero gap: duplicate flip id"));
            }
            let id = prev
                .checked_add(delta)
                .ok_or_else(|| corrupt("flip id overflows u64"))?;
            if id >= max_id {
                return Err(corrupt("flip id out of range for header n"));
            }
            flips.push(id);
            prev = id;
        }
        self.edges = symm_diff(&self.edges, &flips);
        self.consumed += 1;
        Ok(Some(flips))
    }

    /// Decodes the next round and materializes its graph, or `None` at
    /// the end of the trace.
    pub fn next_graph(&mut self) -> io::Result<Option<Graph>> {
        Ok(self
            .next_flips()?
            .map(|_| graph_from_ids(self.header.n, &self.edges)))
    }
}

impl<R: Read + Seek> DctReader<R> {
    /// Rewinds to round 0 (the decode state resets with the stream).
    pub fn rewind(&mut self) -> io::Result<()> {
        self.r.seek(SeekFrom::Start(HEADER_LEN))?;
        self.edges.clear();
        self.consumed = 0;
        Ok(())
    }
}

/// Encodes an in-memory [`DeltaTrace`] to `.dct` bytes.
pub fn encode_trace(trace: &DeltaTrace, seed: u64) -> Vec<u8> {
    let cursor = io::Cursor::new(Vec::new());
    let mut w = DctWriter::new(cursor, trace.num_nodes(), seed).expect("in-memory write");
    for round in 0..trace.len() {
        w.push_flips(trace.flips(round)).expect("in-memory write");
    }
    w.finish().expect("in-memory write").into_inner()
}

/// Decodes `.dct` bytes into an in-memory [`DeltaTrace`] (plus header).
/// For large traces prefer the streaming [`DctReader`].
pub fn decode_trace(bytes: &[u8]) -> io::Result<(DctHeader, DeltaTrace)> {
    let mut r = DctReader::new(io::Cursor::new(bytes))?;
    let header = *r.header();
    let mut trace = DeltaTrace::new(header.n);
    while let Some(flips) = r.next_flips()? {
        trace.push_flips(flips);
    }
    Ok((header, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncode_dynet::generators;

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v).unwrap();
        }
        let mut cur = io::Cursor::new(buf);
        for &v in &values {
            assert_eq!(read_varint(&mut cur).unwrap(), v);
        }
    }

    #[test]
    fn write_read_round_trip_with_empty_and_full_deltas() {
        let path = generators::path(8);
        let star = generators::star(8, 3);
        // path → path (empty delta) → star (full rewire) → empty-ish.
        let rounds = [path.clone(), path.clone(), star.clone(), path.clone()];
        let cursor = io::Cursor::new(Vec::new());
        let mut w = DctWriter::new(cursor, 8, 42).unwrap();
        for g in &rounds {
            w.push(g).unwrap();
        }
        let bytes = w.finish().unwrap().into_inner();

        let mut r = DctReader::new(io::Cursor::new(bytes)).unwrap();
        assert_eq!(
            *r.header(),
            DctHeader {
                n: 8,
                rounds: 4,
                seed: 42
            }
        );
        for g in &rounds {
            assert_eq!(r.next_graph().unwrap().as_ref(), Some(g));
        }
        assert!(r.next_graph().unwrap().is_none(), "trace ends cleanly");
    }

    #[test]
    fn identical_round_costs_one_byte() {
        let g = generators::complete(10);
        let one_round = {
            let mut w = DctWriter::new(io::Cursor::new(Vec::new()), 10, 0).unwrap();
            w.push(&g).unwrap();
            w.finish().unwrap().into_inner().len()
        };
        let three_rounds = {
            let mut w = DctWriter::new(io::Cursor::new(Vec::new()), 10, 0).unwrap();
            w.push(&g).unwrap();
            w.push(&g).unwrap();
            w.push(&g).unwrap();
            w.finish().unwrap().into_inner().len()
        };
        assert!(one_round > 24 + 45, "first frame carries all 45 edges");
        assert_eq!(
            three_rounds,
            one_round + 2,
            "each unchanged round costs exactly one byte"
        );
    }

    #[test]
    fn encode_decode_trace_helpers_round_trip() {
        let mut trace = DeltaTrace::new(0);
        trace.push(&generators::cycle(6));
        trace.push(&generators::path(6));
        trace.push(&generators::path(6));
        let bytes = encode_trace(&trace, 7);
        let (header, back) = decode_trace(&bytes).unwrap();
        assert_eq!(header.n, 6);
        assert_eq!(header.rounds, 3);
        assert_eq!(header.seed, 7);
        assert_eq!(back, trace);
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(DctReader::new(io::Cursor::new(b"NOPE".to_vec())).is_err());

        // Out-of-range flip id: header says n = 3 (max id 3) but the
        // frame flips id 5.
        let cursor = io::Cursor::new(Vec::new());
        let mut w = DctWriter::new(cursor, 20, 0).unwrap();
        w.push(&generators::star(20, 0)).unwrap();
        let mut bytes = w.finish().unwrap().into_inner();
        bytes[4..8].copy_from_slice(&3u32.to_le_bytes()); // shrink n
        let mut r = DctReader::new(io::Cursor::new(bytes)).unwrap();
        assert!(r.next_flips().is_err());

        // Truncated frame: header promises a round that is not there.
        let cursor = io::Cursor::new(Vec::new());
        let w = DctWriter::new(cursor, 4, 0).unwrap();
        let mut bytes = w.finish().unwrap().into_inner();
        bytes[8..16].copy_from_slice(&1u64.to_le_bytes()); // claim 1 round
        let mut r = DctReader::new(io::Cursor::new(bytes)).unwrap();
        assert!(r.next_flips().is_err());
    }

    #[test]
    fn rewind_restarts_the_decode() {
        let cursor = io::Cursor::new(Vec::new());
        let mut w = DctWriter::new(cursor, 5, 0).unwrap();
        let a = generators::path(5);
        let b = generators::star(5, 2);
        w.push(&a).unwrap();
        w.push(&b).unwrap();
        let bytes = w.finish().unwrap().into_inner();
        let mut r = DctReader::new(io::Cursor::new(bytes)).unwrap();
        assert_eq!(r.next_graph().unwrap(), Some(a.clone()));
        assert_eq!(r.next_graph().unwrap(), Some(b));
        r.rewind().unwrap();
        assert_eq!(r.consumed(), 0);
        assert_eq!(r.next_graph().unwrap(), Some(a));
    }
}
