//! Record and replay `.dct` traces through the [`Adversary`] interface.
//!
//! Because the simulator hands adversaries a *private* RNG stream
//! (`dyncode_dynet::simulator::adversary_rng`), substituting a
//! [`DctReplay`] (which draws nothing) for the stochastic adversary that
//! produced the trace leaves the protocol's coins untouched: a run
//! replayed from a recorded trace reproduces the original [`RunResult`]
//! (rounds, bits, history) exactly — the paired-comparison workhorse
//! behind experiment e20.
//!
//! [`RunResult`]: dyncode_dynet::simulator::RunResult

use crate::dct::{DctHeader, DctReader, DctWriter};
use crate::ScenarioKind;
use dyncode_dynet::adversary::{Adversary, KnowledgeView};
use dyncode_dynet::graph::Graph;
use dyncode_dynet::simulator::adversary_rng;
use rand::rngs::StdRng;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, Write};
use std::path::Path;

/// An adversary replaying a `.dct` trace by streaming it: only the
/// current edge set lives in memory, so arbitrarily long traces replay in
/// O(edges) space. Past the end the trace cycles (rewinding the stream).
pub struct DctReplay<R: Read + Seek> {
    reader: DctReader<R>,
    /// `(round index within the trace, its graph)` — the round most
    /// recently served, cached because `TStable` re-asks for it.
    current: Option<(u64, Graph)>,
}

/// The file-backed replay adversary (what `scenario = trace(path)`
/// builds).
pub type DctReplayAdversary = DctReplay<BufReader<File>>;

impl DctReplayAdversary {
    /// Opens a `.dct` file for streaming replay.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        DctReplay::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> DctReplay<R> {
    /// Wraps a seekable `.dct` stream.
    ///
    /// # Errors
    /// Fails on a bad header or a zero-round trace.
    pub fn new(source: R) -> io::Result<Self> {
        let reader = DctReader::new(source)?;
        if reader.header().rounds == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "cannot replay an empty trace",
            ));
        }
        Ok(DctReplay {
            reader,
            current: None,
        })
    }

    /// The trace header.
    pub fn header(&self) -> &DctHeader {
        self.reader.header()
    }

    fn graph_at(&mut self, idx: u64) -> io::Result<Graph> {
        if let Some((at, g)) = &self.current {
            if *at == idx {
                return Ok(g.clone());
            }
        }
        if self.reader.consumed() > idx {
            self.reader.rewind()?;
        }
        let mut g = None;
        while self.reader.consumed() <= idx {
            g = self.reader.next_graph()?;
        }
        let g = g.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "trace ended before its header said",
            )
        })?;
        self.current = Some((idx, g.clone()));
        Ok(g)
    }
}

impl<R: Read + Seek> Adversary for DctReplay<R> {
    fn name(&self) -> String {
        format!("trace-replay({} rounds)", self.reader.header().rounds)
    }

    fn topology(&mut self, round: usize, view: &KnowledgeView, _rng: &mut StdRng) -> Graph {
        let header = *self.reader.header();
        assert_eq!(
            view.num_nodes(),
            header.n,
            "trace is for n={} but the run has n={}",
            header.n,
            view.num_nodes()
        );
        let idx = (round as u64) % header.rounds;
        self.graph_at(idx)
            .unwrap_or_else(|e| panic!("trace replay failed at round {round}: {e}"))
    }
}

/// Wraps an adversary, streaming every emitted topology into a
/// [`DctWriter`]. Call [`DctRecording::finish`] to patch the header when
/// the run is over.
pub struct DctRecording<A, W: Write + Seek> {
    inner: A,
    writer: Option<DctWriter<W>>,
}

impl<A: Adversary, W: Write + Seek> DctRecording<A, W> {
    /// Wraps `inner`, recording into `writer`.
    pub fn new(inner: A, writer: DctWriter<W>) -> Self {
        DctRecording {
            inner,
            writer: Some(writer),
        }
    }

    /// Finalizes the trace (header round count) and returns the inner
    /// adversary and the sink.
    pub fn finish(mut self) -> io::Result<(A, W)> {
        let w = self
            .writer
            .take()
            .expect("finish is consuming, the writer is present")
            .finish()?;
        Ok((self.inner, w))
    }
}

impl<A: Adversary, W: Write + Seek> Adversary for DctRecording<A, W> {
    fn name(&self) -> String {
        format!("dct-recorded({})", self.inner.name())
    }

    fn topology(&mut self, round: usize, view: &KnowledgeView, rng: &mut StdRng) -> Graph {
        let g = self.inner.topology(round, view, rng);
        self.writer
            .as_mut()
            .expect("recording already finished")
            .push(&g)
            .unwrap_or_else(|e| panic!("trace write failed at round {round}: {e}"));
        g
    }
}

/// Records `rounds` topologies of `scenario` on `n` nodes into `sink`,
/// driving the adversary with the **same private RNG stream** a live
/// simulator run from `seed` would use and a blank knowledge view.
///
/// For oblivious scenario models (edge-Markov, waypoint, churn over an
/// oblivious base — everything [`ScenarioKind`] builds except
/// knowledge-adaptive bases) the recorded schedule is bit-identical to
/// what `simulator::run(…, seed)` would feed the protocol, so replaying
/// it against the same seed reproduces the run exactly.
pub fn record_scenario<W: Write + Seek>(
    scenario: &ScenarioKind,
    n: usize,
    rounds: usize,
    seed: u64,
    sink: W,
) -> io::Result<DctHeader> {
    let adv = scenario.build();
    let mut rng = adversary_rng(seed);
    let view = KnowledgeView::blank(n, 1);
    let mut rec = DctRecording::new(adv, DctWriter::new(sink, n, seed)?);
    for round in 0..rounds {
        rec.topology(round, &view, &mut rng);
    }
    let (_, mut sink) = rec.finish()?;
    sink.flush()?;
    Ok(DctHeader {
        n,
        rounds: rounds as u64,
        seed,
    })
}

/// [`record_scenario`] straight to a file path (buffered).
pub fn record_scenario_to_file(
    scenario: &ScenarioKind,
    n: usize,
    rounds: usize,
    seed: u64,
    path: impl AsRef<Path>,
) -> io::Result<DctHeader> {
    let file = File::create(path)?;
    let header = record_scenario(scenario, n, rounds, seed, BufWriter::new(file))?;
    Ok(header)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_markov::EdgeMarkovAdversary;
    use rand::SeedableRng;
    use std::io::Cursor;

    fn record_in_memory(rounds: usize, seed: u64) -> Vec<u8> {
        let adv = EdgeMarkovAdversary::new(0.1, 0.2);
        let view = KnowledgeView::blank(9, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rec = DctRecording::new(
            adv,
            DctWriter::new(Cursor::new(Vec::new()), 9, seed).unwrap(),
        );
        for r in 0..rounds {
            rec.topology(r, &view, &mut rng);
        }
        rec.finish().unwrap().1.into_inner()
    }

    #[test]
    fn recorded_trace_replays_identically_and_cycles() {
        let bytes = record_in_memory(7, 3);

        // Decode the originals straight from the bytes…
        let mut direct = DctReader::new(Cursor::new(bytes.clone())).unwrap();
        let mut originals = Vec::new();
        while let Some(g) = direct.next_graph().unwrap() {
            originals.push(g);
        }
        assert_eq!(originals.len(), 7);

        // …and through the replay adversary, in order and cycling.
        let mut replay = DctReplay::new(Cursor::new(bytes)).unwrap();
        let view = KnowledgeView::blank(9, 2);
        let mut rng = StdRng::seed_from_u64(999);
        for (r, g) in originals.iter().enumerate() {
            assert_eq!(&replay.topology(r, &view, &mut rng), g);
        }
        assert_eq!(&replay.topology(7, &view, &mut rng), &originals[0]);
        assert_eq!(&replay.topology(8, &view, &mut rng), &originals[1]);
        // Re-asking for the same round (TStable does this) is served from
        // the cache, and a backward jump rewinds cleanly.
        assert_eq!(&replay.topology(8, &view, &mut rng), &originals[1]);
        assert_eq!(&replay.topology(2, &view, &mut rng), &originals[2]);
    }

    #[test]
    fn record_scenario_matches_live_adversary_stream() {
        let kind = ScenarioKind::parse("edge-markov(0.08,0.25)").unwrap();
        let mut bytes = Cursor::new(Vec::new());
        record_scenario(&kind, 11, 6, 42, &mut bytes).unwrap();

        // A live adversary driven by the simulator's private stream for
        // the same seed must emit exactly the recorded schedule.
        let mut live = kind.build();
        let mut rng = adversary_rng(42);
        let view = KnowledgeView::blank(11, 1);
        let mut replay = DctReplay::new(Cursor::new(bytes.into_inner())).unwrap();
        let mut rng2 = StdRng::seed_from_u64(0);
        for r in 0..6 {
            let expect = live.topology(r, &view, &mut rng);
            assert_eq!(replay.topology(r, &view, &mut rng2), expect, "round {r}");
        }
    }

    #[test]
    fn wrong_n_is_rejected_loudly() {
        let bytes = record_in_memory(3, 1);
        let mut replay = DctReplay::new(Cursor::new(bytes)).unwrap();
        let view = KnowledgeView::blank(4, 2); // trace is for n = 9
        let mut rng = StdRng::seed_from_u64(0);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            replay.topology(0, &view, &mut rng)
        }));
        assert!(res.is_err());
    }

    #[test]
    fn empty_trace_is_rejected() {
        let w = DctWriter::new(Cursor::new(Vec::new()), 5, 0).unwrap();
        let bytes = w.finish().unwrap().into_inner();
        assert!(DctReplay::new(Cursor::new(bytes)).is_err());
    }
}
