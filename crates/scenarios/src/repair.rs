//! Connectivity repair: the pass that upholds the KLO model's standing
//! requirement (every per-round communication graph is connected) on top
//! of stochastic evolving-graph models, which have no reason to be
//! connected on their own.
//!
//! The rule: compute connected components, order them by their smallest
//! node id, and chain consecutive components with one edge between
//! uniformly random endpoints. A graph with `C` components gains exactly
//! `C − 1` edges — the minimum possible — so the stochastic model's edge
//! statistics are perturbed as little as connectivity allows. Repair
//! edges are *ephemeral*: models that carry edge state across rounds
//! (edge-Markov) do **not** fold them back into their chain state, so the
//! underlying process stays the pure model and the repair is a per-round
//! overlay.

use dyncode_dynet::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::RngExt;

/// The connected components of `g`, each sorted ascending, ordered by
/// smallest member.
pub fn components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start] = true;
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for &v in g.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// Makes `g` connected by chaining its components with uniformly random
/// endpoint pairs; returns the number of edges added (`components − 1`).
pub fn connect_components(g: &mut Graph, rng: &mut StdRng) -> usize {
    let comps = components(g);
    for pair in comps.windows(2) {
        let u = pair[0][rng.random_range(0..pair[0].len())];
        let v = pair[1][rng.random_range(0..pair[1].len())];
        g.add_edge(u, v);
    }
    comps.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn repair_adds_minimum_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        // 3 islands: {0,1}, {2}, {3,4,5}.
        let mut g = Graph::from_edges(6, &[(0, 1), (3, 4), (4, 5)]);
        assert_eq!(components(&g).len(), 3);
        let added = connect_components(&mut g, &mut rng);
        assert_eq!(added, 2);
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn empty_graph_repairs_to_a_chain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = Graph::empty(7);
        let added = connect_components(&mut g, &mut rng);
        assert_eq!(added, 6);
        assert!(g.is_connected());
    }

    #[test]
    fn connected_graph_is_untouched() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(connect_components(&mut g, &mut rng), 0);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn trivial_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut g0 = Graph::empty(0);
        assert_eq!(connect_components(&mut g0, &mut rng), 0);
        let mut g1 = Graph::empty(1);
        assert_eq!(connect_components(&mut g1, &mut rng), 0);
        assert!(g1.is_connected());
    }
}
