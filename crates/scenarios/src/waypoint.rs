//! Random-waypoint mobility on the unit square: each node walks toward a
//! uniformly chosen waypoint at constant speed, redrawing a fresh
//! waypoint on arrival; the round's communication graph is the unit-disk
//! graph of the positions (an edge whenever two nodes are within the
//! communication radius). The classic MANET mobility model.
//!
//! Unit-disk graphs disconnect routinely at small radii, so the emitted
//! topology gets a *geometric* connectivity repair: while more than one
//! component remains, the globally closest pair of nodes in different
//! components is bridged — the minimal-length cable that an operator
//! would string.

use dyncode_dynet::adversary::{Adversary, KnowledgeView};
use dyncode_dynet::graph::Graph;
use rand::rngs::StdRng;
use rand::RngExt;

/// The random-waypoint adversary. Oblivious: ignores node knowledge.
pub struct WaypointAdversary {
    radius: f64,
    speed: f64,
    pos: Vec<[f64; 2]>,
    dst: Vec<[f64; 2]>,
}

impl WaypointAdversary {
    /// Creates the model with communication `radius` and per-round
    /// movement `speed`, both in unit-square lengths.
    ///
    /// # Panics
    /// Panics unless `radius > 0` and `speed > 0`.
    pub fn new(radius: f64, speed: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        assert!(speed > 0.0, "speed must be positive");
        WaypointAdversary {
            radius,
            speed,
            pos: Vec::new(),
            dst: Vec::new(),
        }
    }

    /// Current node positions (empty before the first round).
    pub fn positions(&self) -> &[[f64; 2]] {
        &self.pos
    }

    fn rand_point(rng: &mut StdRng) -> [f64; 2] {
        [rng.random::<f64>(), rng.random::<f64>()]
    }

    fn step(&mut self, rng: &mut StdRng) {
        for i in 0..self.pos.len() {
            let [px, py] = self.pos[i];
            let [dx, dy] = self.dst[i];
            let (vx, vy) = (dx - px, dy - py);
            let dist = (vx * vx + vy * vy).sqrt();
            if dist <= self.speed {
                self.pos[i] = self.dst[i];
                self.dst[i] = Self::rand_point(rng);
            } else {
                let scale = self.speed / dist;
                self.pos[i] = [px + vx * scale, py + vy * scale];
            }
        }
    }

    /// Bridges components by their globally closest cross-component node
    /// pair until the graph is connected.
    fn geometric_repair(&self, g: &mut Graph) {
        loop {
            let comps = crate::repair::components(g);
            if comps.len() <= 1 {
                return;
            }
            // Component index per node.
            let mut comp_of = vec![0usize; g.num_nodes()];
            for (ci, comp) in comps.iter().enumerate() {
                for &u in comp {
                    comp_of[u] = ci;
                }
            }
            let mut best: Option<(f64, usize, usize)> = None;
            for u in 0..g.num_nodes() {
                for v in (u + 1)..g.num_nodes() {
                    if comp_of[u] == comp_of[v] {
                        continue;
                    }
                    let (ax, ay) = (self.pos[u][0], self.pos[u][1]);
                    let (bx, by) = (self.pos[v][0], self.pos[v][1]);
                    let d2 = (ax - bx) * (ax - bx) + (ay - by) * (ay - by);
                    if best.is_none_or(|(bd, _, _)| d2 < bd) {
                        best = Some((d2, u, v));
                    }
                }
            }
            let (_, u, v) = best.expect("≥2 components have a cross pair");
            g.add_edge(u, v);
        }
    }
}

impl Adversary for WaypointAdversary {
    fn name(&self) -> String {
        format!("waypoint({},{})", self.radius, self.speed)
    }

    fn topology(&mut self, _round: usize, view: &KnowledgeView, rng: &mut StdRng) -> Graph {
        let n = view.num_nodes();
        if self.pos.len() != n {
            self.pos = (0..n).map(|_| Self::rand_point(rng)).collect();
            self.dst = (0..n).map(|_| Self::rand_point(rng)).collect();
        } else {
            self.step(rng);
        }
        let mut g = Graph::empty(n);
        let r2 = self.radius * self.radius;
        for u in 0..n {
            for v in (u + 1)..n {
                let (ax, ay) = (self.pos[u][0], self.pos[u][1]);
                let (bx, by) = (self.pos[v][0], self.pos[v][1]);
                if (ax - bx) * (ax - bx) + (ay - by) * (ay - by) <= r2 {
                    g.add_edge(u, v);
                }
            }
        }
        self.geometric_repair(&mut g);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn always_connected_even_at_tiny_radius() {
        let mut adv = WaypointAdversary::new(0.05, 0.02);
        let view = KnowledgeView::blank(16, 2);
        let mut rng = StdRng::seed_from_u64(1);
        for round in 0..30 {
            let g = adv.topology(round, &view, &mut rng);
            assert!(g.is_connected(), "round {round}");
            assert_eq!(g.num_nodes(), 16);
        }
    }

    #[test]
    fn positions_move_at_most_speed_per_round() {
        let mut adv = WaypointAdversary::new(0.3, 0.04);
        let view = KnowledgeView::blank(10, 2);
        let mut rng = StdRng::seed_from_u64(2);
        adv.topology(0, &view, &mut rng);
        let before = adv.positions().to_vec();
        adv.topology(1, &view, &mut rng);
        for (a, b) in before.iter().zip(adv.positions()) {
            let d = ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
            assert!(d <= 0.04 + 1e-12, "moved {d} > speed");
        }
    }

    #[test]
    fn large_radius_gives_dense_graphs() {
        let mut adv = WaypointAdversary::new(1.5, 0.05); // covers the square
        let view = KnowledgeView::blank(8, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let g = adv.topology(0, &view, &mut rng);
        assert_eq!(g.num_edges(), 8 * 7 / 2, "diameter √2 < 1.5 ⇒ complete");
    }

    #[test]
    fn topology_changes_over_time() {
        let mut adv = WaypointAdversary::new(0.4, 0.1);
        let view = KnowledgeView::blank(14, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let a = adv.topology(0, &view, &mut rng);
        let mut changed = false;
        for round in 1..20 {
            if adv.topology(round, &view, &mut rng) != a {
                changed = true;
                break;
            }
        }
        assert!(changed, "mobility must eventually rewire the graph");
    }
}
