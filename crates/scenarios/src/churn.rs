//! Node churn on top of any base adversary: each round every node flips
//! between *active* and *parked* with a given probability. The round's
//! core topology is the base adversary's graph **induced on the active
//! set** (re-connected by the minimal repair pass when parking cut it);
//! parked nodes are attached by a single random *tether* edge to an
//! active node.
//!
//! The base adversary always runs on the **full** node set, so stateful
//! models keep their state coherent across churn: an edge-Markov base
//! keeps its per-edge chains evolving and a waypoint base keeps its node
//! positions, regardless of who is currently parked — churn masks the
//! topology, it never resets the underlying dynamics.
//!
//! Why tethers instead of removal: the KLO model (and this simulator)
//! requires every round's graph to be connected over **all** n nodes, so
//! true departures are outside the model. A tethered node models the
//! weakest legal presence — one link, no position in the core topology —
//! while **preserving token ownership**: a parked node keeps its tokens
//! and its protocol state, and rejoins the core wiring when it
//! reactivates. The subgraph induced on the active set stays connected
//! (the invariant the property tests check).

use crate::repair;
use dyncode_dynet::adversary::{Adversary, KnowledgeView};
use dyncode_dynet::graph::Graph;
use rand::rngs::StdRng;
use rand::RngExt;

/// The churn wrapper. Adaptivity passes through: the base adversary sees
/// the full knowledge view every round.
pub struct ChurnAdversary<A> {
    inner: A,
    rate: f64,
    active: Vec<bool>,
}

impl<A: Adversary> ChurnAdversary<A> {
    /// Wraps `inner`; every node toggles activity with probability
    /// `rate` per round (round 0 starts all-active).
    ///
    /// # Panics
    /// Panics unless `0 ≤ rate < 1`.
    pub fn new(inner: A, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "churn rate must be in [0, 1)");
        ChurnAdversary {
            inner,
            rate,
            active: Vec::new(),
        }
    }

    /// The current activity flags (empty before the first round).
    pub fn active(&self) -> &[bool] {
        &self.active
    }
}

impl<A: Adversary> Adversary for ChurnAdversary<A> {
    fn name(&self) -> String {
        format!("churn({},{})", self.rate, self.inner.name())
    }

    fn topology(&mut self, round: usize, view: &KnowledgeView, rng: &mut StdRng) -> Graph {
        let n = view.num_nodes();
        if self.active.len() != n {
            self.active = vec![true; n];
        } else {
            for a in &mut self.active {
                if rng.random_bool(self.rate) {
                    *a = !*a;
                }
            }
            // The active set must never empty out (somebody has to hold
            // the core topology); re-admit node 0 if it would.
            if !self.active.iter().any(|&a| a) {
                self.active[0] = true;
            }
        }
        // The base runs on the full node set: its state (Markov chains,
        // positions, …) evolves undisturbed by who is parked.
        let full = self.inner.topology(round, view, rng);
        assert_eq!(
            full.num_nodes(),
            n,
            "base adversary {} produced a wrong-sized graph",
            self.inner.name()
        );
        // Core topology: the base graph induced on the active set,
        // repaired to connectivity where parking cut it (compact
        // indices; the repair helper is stateless, so re-indexing is
        // harmless here).
        let ids: Vec<usize> = (0..n).filter(|&u| self.active[u]).collect();
        let mut index_of = vec![usize::MAX; n];
        for (i, &u) in ids.iter().enumerate() {
            index_of[u] = i;
        }
        let mut sub = Graph::empty(ids.len());
        for (u, v) in full.edges() {
            if self.active[u] && self.active[v] {
                sub.add_edge(index_of[u], index_of[v]);
            }
        }
        repair::connect_components(&mut sub, rng);
        let mut g = Graph::empty(n);
        for (a, b) in sub.edges() {
            g.add_edge(ids[a], ids[b]);
        }
        for u in 0..n {
            if !self.active[u] {
                let anchor = ids[rng.random_range(0..ids.len())];
                g.add_edge(u, anchor);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_markov::EdgeMarkovAdversary;
    use dyncode_dynet::adversaries::RandomConnectedAdversary;
    use rand::SeedableRng;

    fn induced_active_connected(g: &Graph, active: &[bool]) -> bool {
        let ids: Vec<usize> = (0..g.num_nodes()).filter(|&u| active[u]).collect();
        if ids.len() <= 1 {
            return true;
        }
        let mut sub = Graph::empty(ids.len());
        for (a, &u) in ids.iter().enumerate() {
            for (b, &v) in ids.iter().enumerate().skip(a + 1) {
                if g.has_edge(u, v) {
                    sub.add_edge(a, b);
                }
            }
        }
        sub.is_connected()
    }

    #[test]
    fn full_graph_and_active_core_stay_connected() {
        let mut adv = ChurnAdversary::new(RandomConnectedAdversary::new(1), 0.25);
        let view = KnowledgeView::blank(12, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_parked = false;
        for round in 0..40 {
            let g = adv.topology(round, &view, &mut rng);
            assert!(g.is_connected(), "round {round}: full graph disconnected");
            assert!(
                induced_active_connected(&g, adv.active()),
                "round {round}: active core disconnected"
            );
            saw_parked |= adv.active().iter().any(|&a| !a);
        }
        assert!(saw_parked, "a 25% churn rate must actually park nodes");
    }

    #[test]
    fn parked_nodes_have_exactly_one_tether() {
        let mut adv = ChurnAdversary::new(RandomConnectedAdversary::new(0), 0.4);
        let view = KnowledgeView::blank(10, 2);
        let mut rng = StdRng::seed_from_u64(2);
        for round in 0..30 {
            let g = adv.topology(round, &view, &mut rng);
            for (u, &a) in adv.active().iter().enumerate() {
                if !a {
                    assert_eq!(g.degree(u), 1, "round {round}: parked {u}");
                    let anchor = g.neighbors(u)[0];
                    assert!(adv.active()[anchor], "tether must land on an active node");
                }
            }
        }
    }

    #[test]
    fn base_state_survives_churn() {
        // The base runs on the full node set, so a stateful base (here
        // an edge-Markov chain with 2% per-edge flip probability) must
        // keep its temporal correlation across activity changes — the
        // chain is never resampled because the active count moved.
        let mut adv = ChurnAdversary::new(EdgeMarkovAdversary::new(0.02, 0.02), 0.3);
        let view = KnowledgeView::blank(20, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut prev: Option<(Graph, Vec<bool>)> = None;
        let (mut persisted, mut observed) = (0usize, 0usize);
        for round in 0..30 {
            let g = adv.topology(round, &view, &mut rng);
            let act = adv.active().to_vec();
            if let Some((pg, pact)) = &prev {
                // Core edges between nodes active in both rounds: all
                // but ~2% (plus the rare ephemeral repair edge) persist.
                for (u, v) in pg.edges() {
                    if pact[u] && pact[v] && act[u] && act[v] {
                        observed += 1;
                        if g.has_edge(u, v) {
                            persisted += 1;
                        }
                    }
                }
            }
            prev = Some((g, act));
        }
        assert!(observed > 100, "test must actually observe edges");
        assert!(
            persisted * 10 > observed * 8,
            "Markov edges must persist under churn: {persisted}/{observed}"
        );
    }

    #[test]
    fn round_zero_is_all_active() {
        let mut adv = ChurnAdversary::new(RandomConnectedAdversary::new(0), 0.5);
        let view = KnowledgeView::blank(8, 2);
        let mut rng = StdRng::seed_from_u64(3);
        adv.topology(0, &view, &mut rng);
        assert!(adv.active().iter().all(|&a| a));
    }

    #[test]
    #[should_panic(expected = "churn rate must be in [0, 1)")]
    fn full_churn_rejected() {
        let _ = ChurnAdversary::new(RandomConnectedAdversary::new(0), 1.0);
    }
}
