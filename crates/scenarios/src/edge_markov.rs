//! The edge-Markov evolving-graph model: every potential edge is an
//! independent two-state Markov chain (absent → present with probability
//! `p_up`, present → absent with probability `p_down`), the standard
//! stochastic model of dynamic networks (Clementi et al.'s
//! edge-Markovian dynamic graphs). A connectivity-repair overlay
//! ([`crate::repair`]) keeps every emitted round connected, as the KLO
//! model requires.

use crate::repair;
use dyncode_dynet::adversary::{Adversary, KnowledgeView};
use dyncode_dynet::graph::Graph;
use dyncode_dynet::trace::{graph_from_ids, id_to_edge};
use rand::rngs::StdRng;
use rand::RngExt;

/// The edge-Markov adversary. Oblivious: ignores node knowledge.
pub struct EdgeMarkovAdversary {
    p_up: f64,
    p_down: f64,
    /// Sorted edge ids of the chain state (repair edges excluded).
    state: Vec<u64>,
    /// Node count the state was built for (0 = uninitialized).
    n: usize,
}

impl EdgeMarkovAdversary {
    /// Creates the model with birth probability `p_up` and death
    /// probability `p_down` per edge per round.
    ///
    /// # Panics
    /// Panics unless `0 < p_up ≤ 1` and `0 ≤ p_down ≤ 1`.
    pub fn new(p_up: f64, p_down: f64) -> Self {
        assert!(p_up > 0.0 && p_up <= 1.0, "p_up must be in (0, 1]");
        assert!((0.0..=1.0).contains(&p_down), "p_down must be in [0, 1]");
        EdgeMarkovAdversary {
            p_up,
            p_down,
            state: Vec::new(),
            n: 0,
        }
    }

    /// The stationary per-edge presence probability
    /// `p_up / (p_up + p_down)`, used to seed round 0 so the chain starts
    /// in (approximate) equilibrium instead of from the empty graph.
    pub fn stationary_p(&self) -> f64 {
        self.p_up / (self.p_up + self.p_down)
    }

    fn max_id(n: usize) -> u64 {
        (n as u64) * (n as u64 - 1) / 2
    }

    fn init(&mut self, n: usize, rng: &mut StdRng) {
        let p = self.stationary_p();
        self.state = (0..Self::max_id(n))
            .filter(|_| rng.random_bool(p))
            .collect();
        self.n = n;
    }

    fn evolve(&mut self, rng: &mut StdRng) {
        let mut next = Vec::with_capacity(self.state.len());
        let mut present = self.state.iter().peekable();
        for id in 0..Self::max_id(self.n) {
            let is_present = present.next_if(|&&p| p == id).is_some();
            let survives = if is_present {
                !rng.random_bool(self.p_down)
            } else {
                rng.random_bool(self.p_up)
            };
            if survives {
                next.push(id);
            }
        }
        self.state = next;
    }
}

impl Adversary for EdgeMarkovAdversary {
    fn name(&self) -> String {
        format!("edge-markov({},{})", self.p_up, self.p_down)
    }

    fn topology(&mut self, _round: usize, view: &KnowledgeView, rng: &mut StdRng) -> Graph {
        let n = view.num_nodes();
        if self.n != n {
            self.init(n, rng);
        } else {
            self.evolve(rng);
        }
        let mut g = graph_from_ids(n, &self.state);
        repair::connect_components(&mut g, rng);
        debug_assert!(self.state.iter().all(|&id| {
            let (u, v) = id_to_edge(id);
            g.has_edge(u, v)
        }));
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn always_connected_and_right_sized() {
        let mut adv = EdgeMarkovAdversary::new(0.05, 0.3);
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 20] {
            let view = KnowledgeView::blank(n, 3);
            for round in 0..25 {
                let g = adv.topology(round, &view, &mut rng);
                assert_eq!(g.num_nodes(), n);
                assert!(g.is_connected(), "n={n} round={round}");
            }
        }
    }

    #[test]
    fn edges_persist_more_than_they_churn() {
        // With p_down small, consecutive rounds share most edges — the
        // whole point of the delta-encoded trace format.
        let mut adv = EdgeMarkovAdversary::new(0.02, 0.05);
        let view = KnowledgeView::blank(24, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let a = adv.topology(0, &view, &mut rng);
        let b = adv.topology(1, &view, &mut rng);
        let shared = a.edges().iter().filter(|&&(u, v)| b.has_edge(u, v)).count();
        assert!(
            shared * 2 > a.num_edges(),
            "most edges should survive one step: {shared}/{}",
            a.num_edges()
        );
        assert_ne!(a.edges(), b.edges(), "but some churn must happen");
    }

    #[test]
    fn stationary_density_is_tracked() {
        let mut adv = EdgeMarkovAdversary::new(0.1, 0.1); // stationary 1/2
        let view = KnowledgeView::blank(30, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let g = adv.topology(0, &view, &mut rng);
        let pairs = 30 * 29 / 2;
        let density = g.num_edges() as f64 / pairs as f64;
        assert!((0.35..0.65).contains(&density), "density {density}");
    }

    #[test]
    #[should_panic(expected = "p_up must be in (0, 1]")]
    fn zero_p_up_rejected() {
        let _ = EdgeMarkovAdversary::new(0.0, 0.5);
    }
}
