//! # dyncode-scenarios
//!
//! The workload subsystem: *realistic* dynamic-network scenarios to set
//! against the worst-case adversaries the paper's bounds are proved
//! over. The paper's claims (Thm 2.1/2.4, Lem 7.2, Thm 7.3/7.5) hold
//! "against any adversary"; this crate measures how coding vs forwarding
//! behave on the stochastic dynamics real systems see — where protocol
//! rankings can flip (cf. Czumaj–Davies on spontaneous transmissions).
//!
//! Three layers:
//!
//! * **Evolving-graph models** implementing
//!   [`Adversary`]:
//!   [`edge_markov`] (per-edge birth/death chains), [`waypoint`] (random
//!   waypoint mobility on the unit square with a communication radius),
//!   and [`churn`] (activity flapping over any base adversary, token
//!   ownership preserved). Each upholds the KLO per-round connectivity
//!   invariant via a [`repair`] pass.
//! * **The `.dct` trace format** ([`dct`]): delta-encoded edge flips per
//!   round, varint-coded, with an n/rounds/seed header — recorded and
//!   replayed *streaming* ([`replay`]), so million-round traces never
//!   materialize in memory.
//! * **The factory** ([`ScenarioKind`]): one parse/build enum behind the
//!   campaign engine's `scenario = …` spec key.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod dct;
pub mod edge_markov;
pub mod repair;
pub mod replay;
pub mod waypoint;

pub use churn::ChurnAdversary;
pub use dct::{DctHeader, DctReader, DctWriter};
pub use edge_markov::EdgeMarkovAdversary;
pub use replay::{record_scenario, record_scenario_to_file, DctReplay, DctReplayAdversary};
pub use waypoint::WaypointAdversary;

use dyncode_dynet::adversaries::{
    BottleneckAdversary, KnowledgeAdaptiveAdversary, RandomConnectedAdversary,
    ShuffledPathAdversary, ShuffledStarAdversary,
};
use dyncode_dynet::adversary::Adversary;

/// The scenario factory: every workload model as data, with a textual
/// form used by campaign specs (`scenario = edge-markov(0.05,0.2)`) and
/// the bench CLI's `trace record`.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioKind {
    /// Per-edge birth/death Markov chains: `edge-markov(p_up,p_down)`.
    EdgeMarkov {
        /// Per-round birth probability of an absent edge.
        p_up: f64,
        /// Per-round death probability of a present edge.
        p_down: f64,
    },
    /// Random-waypoint mobility: `waypoint(radius,speed)`.
    Waypoint {
        /// Communication radius in unit-square lengths.
        radius: f64,
        /// Per-round movement in unit-square lengths.
        speed: f64,
    },
    /// Activity flapping over a base model: `churn(rate,base)`.
    Churn {
        /// Per-node per-round activity flip probability.
        rate: f64,
        /// The model wiring the active subset (any [`ScenarioKind`]).
        base: Box<ScenarioKind>,
    },
    /// Replay of a recorded `.dct` file: `trace(path)`.
    Trace {
        /// Path to the `.dct` file.
        path: String,
    },
    /// One of the classic worst-case families from
    /// `dyncode_dynet::adversaries`, usable as a churn base (and parsed
    /// by plain name).
    Classic(ClassicKind),
}

/// The classic worst-case adversary families, as scenario-spec names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassicKind {
    /// A fresh random path order every round.
    ShuffledPath,
    /// A fresh random star center every round.
    ShuffledStar,
    /// Two cliques joined by one moving bridge.
    Bottleneck,
    /// Adaptive: clusters nodes by knowledge similarity.
    KnowledgeAdaptive,
    /// A random connected graph with two extra edges.
    RandomConnected,
}

impl ClassicKind {
    /// The spec name.
    pub fn name(&self) -> &'static str {
        match self {
            ClassicKind::ShuffledPath => "shuffled-path",
            ClassicKind::ShuffledStar => "shuffled-star",
            ClassicKind::Bottleneck => "bottleneck",
            ClassicKind::KnowledgeAdaptive => "knowledge-adaptive",
            ClassicKind::RandomConnected => "random-connected",
        }
    }

    /// Parses a spec name.
    pub fn parse(s: &str) -> Option<ClassicKind> {
        Some(match s {
            "shuffled-path" => ClassicKind::ShuffledPath,
            "shuffled-star" => ClassicKind::ShuffledStar,
            "bottleneck" => ClassicKind::Bottleneck,
            "knowledge-adaptive" => ClassicKind::KnowledgeAdaptive,
            "random-connected" => ClassicKind::RandomConnected,
            _ => return None,
        })
    }

    /// Builds a fresh adversary of this family.
    pub fn build(&self) -> Box<dyn Adversary> {
        match self {
            ClassicKind::ShuffledPath => Box::new(ShuffledPathAdversary),
            ClassicKind::ShuffledStar => Box::new(ShuffledStarAdversary),
            ClassicKind::Bottleneck => Box::new(BottleneckAdversary),
            ClassicKind::KnowledgeAdaptive => Box::new(KnowledgeAdaptiveAdversary),
            ClassicKind::RandomConnected => Box::new(RandomConnectedAdversary::new(2)),
        }
    }
}

pub use dyncode_dynet::split_top_level;

impl ScenarioKind {
    /// The spec-text name (parses back via [`ScenarioKind::parse`]).
    pub fn name(&self) -> String {
        match self {
            ScenarioKind::EdgeMarkov { p_up, p_down } => format!("edge-markov({p_up},{p_down})"),
            ScenarioKind::Waypoint { radius, speed } => format!("waypoint({radius},{speed})"),
            ScenarioKind::Churn { rate, base } => format!("churn({rate},{})", base.name()),
            ScenarioKind::Trace { path } => format!("trace({path})"),
            ScenarioKind::Classic(c) => c.name().to_string(),
        }
    }

    /// Parses a scenario spec:
    ///
    /// ```text
    /// edge-markov(0.05,0.2)          per-edge birth/death probabilities
    /// waypoint(0.35,0.05)            radius, speed on the unit square
    /// churn(0.1,random-connected)    rate, base model (nesting allowed)
    /// trace(path/to.dct)             replay a recorded trace
    /// shuffled-path | … | bottleneck classic families, by name
    /// ```
    pub fn parse(s: &str) -> Result<ScenarioKind, String> {
        let s = s.trim();
        if let Some(c) = ClassicKind::parse(s) {
            return Ok(ScenarioKind::Classic(c));
        }
        let open = s
            .find('(')
            .ok_or(format!("unknown scenario {s:?} (expected name(args))"))?;
        if !s.ends_with(')') {
            return Err(format!("scenario {s:?} is missing its closing paren"));
        }
        let head = s[..open].trim();
        let args = split_top_level(&s[open + 1..s.len() - 1]);
        let prob = |i: usize, what: &str| -> Result<f64, String> {
            let raw = *args
                .get(i)
                .ok_or(format!("{head} is missing its {what} argument"))?;
            raw.parse::<f64>()
                .map_err(|_| format!("bad {what} {raw:?} in {s:?}"))
        };
        let arity = |want: usize| -> Result<(), String> {
            if args.len() == want {
                Ok(())
            } else {
                Err(format!("{head} takes {want} arguments, got {}", args.len()))
            }
        };
        match head {
            "edge-markov" => {
                arity(2)?;
                let (p_up, p_down) = (prob(0, "p_up")?, prob(1, "p_down")?);
                if !(p_up > 0.0 && p_up <= 1.0) {
                    return Err(format!("p_up must be in (0, 1], got {p_up}"));
                }
                if !(0.0..=1.0).contains(&p_down) {
                    return Err(format!("p_down must be in [0, 1], got {p_down}"));
                }
                Ok(ScenarioKind::EdgeMarkov { p_up, p_down })
            }
            "waypoint" => {
                arity(2)?;
                let (radius, speed) = (prob(0, "radius")?, prob(1, "speed")?);
                let positive = |x: f64| x.is_finite() && x > 0.0;
                if !positive(radius) || !positive(speed) {
                    return Err(format!(
                        "waypoint radius and speed must be positive, got ({radius},{speed})"
                    ));
                }
                Ok(ScenarioKind::Waypoint { radius, speed })
            }
            "churn" => {
                arity(2)?;
                let rate = prob(0, "rate")?;
                if !(0.0..1.0).contains(&rate) {
                    return Err(format!("churn rate must be in [0, 1), got {rate}"));
                }
                let base = Box::new(ScenarioKind::parse(args[1])?);
                if matches!(*base, ScenarioKind::Trace { .. }) {
                    return Err("churn over a trace is not supported (the trace already \
                                fixes the full topology)"
                        .into());
                }
                Ok(ScenarioKind::Churn { rate, base })
            }
            "trace" => {
                arity(1)?;
                Ok(ScenarioKind::Trace {
                    path: args[0].to_string(),
                })
            }
            other => Err(format!("unknown scenario {other:?}")),
        }
    }

    /// Builds a fresh adversary for this scenario.
    ///
    /// # Panics
    /// [`ScenarioKind::Trace`] panics if the file cannot be opened or is
    /// not a valid trace (inside an engine cell this is contained as a
    /// recorded `CellError`).
    pub fn build(&self) -> Box<dyn Adversary> {
        match self {
            ScenarioKind::EdgeMarkov { p_up, p_down } => {
                Box::new(EdgeMarkovAdversary::new(*p_up, *p_down))
            }
            ScenarioKind::Waypoint { radius, speed } => {
                Box::new(WaypointAdversary::new(*radius, *speed))
            }
            ScenarioKind::Churn { rate, base } => {
                Box::new(ChurnAdversary::new(base.build(), *rate))
            }
            ScenarioKind::Trace { path } => Box::new(
                DctReplayAdversary::open(path)
                    .unwrap_or_else(|e| panic!("cannot open trace {path:?}: {e}")),
            ),
            ScenarioKind::Classic(c) => c.build(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncode_dynet::adversary::KnowledgeView;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn parse_round_trips_through_name() {
        for spec in [
            "edge-markov(0.05,0.2)",
            "waypoint(0.35,0.05)",
            "churn(0.1,random-connected)",
            "churn(0.25,edge-markov(0.02,0.1))",
            "trace(foo/bar.dct)",
            "shuffled-path",
        ] {
            let k = ScenarioKind::parse(spec).expect(spec);
            assert_eq!(ScenarioKind::parse(&k.name()).unwrap(), k, "{spec}");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "edge-markov(0.05)",        // arity
            "edge-markov(0,0.1)",       // p_up = 0
            "edge-markov(a,b)",         // not numbers
            "waypoint(0.3,-1)",         // negative speed
            "waypoint(nan,0.1)",        // NaN must not slip past validation
            "waypoint(inf,0.1)",        // nor infinity
            "churn(1.0,shuffled-path)", // rate = 1
            "churn(0.1,trace(x.dct))",  // churn over trace
            "mystery(1,2)",             // unknown head
            "waypoint(0.3,0.1",         // unbalanced paren
            "plainname",                // unknown bare name
        ] {
            assert!(ScenarioKind::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn split_top_level_respects_parens() {
        assert_eq!(
            split_top_level("edge-markov(0.05,0.2), churn(0.1,waypoint(0.3,0.1))"),
            vec!["edge-markov(0.05,0.2)", "churn(0.1,waypoint(0.3,0.1))"]
        );
        assert_eq!(split_top_level("a, ,b"), vec!["a", "b"]);
        assert_eq!(split_top_level(""), Vec::<&str>::new());
    }

    #[test]
    fn built_scenarios_emit_connected_topologies() {
        let mut rng = StdRng::seed_from_u64(9);
        for spec in [
            "edge-markov(0.05,0.2)",
            "waypoint(0.3,0.05)",
            "churn(0.2,random-connected)",
            "churn(0.15,edge-markov(0.05,0.2))",
        ] {
            let mut adv = ScenarioKind::parse(spec).unwrap().build();
            let view = KnowledgeView::blank(13, 2);
            for round in 0..20 {
                let g = adv.topology(round, &view, &mut rng);
                assert_eq!(g.num_nodes(), 13, "{spec}");
                assert!(g.is_connected(), "{spec} round {round}");
            }
        }
    }
}
