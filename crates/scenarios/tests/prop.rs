//! Property tests for the workload subsystem: every generated topology
//! honors the KLO connectivity invariant (over the full node set, and —
//! for churn — over the active subset), and the `.dct` format round-trips
//! arbitrary schedules, including empty-delta and full-rewire rounds.

use dyncode_dynet::adversary::{Adversary, KnowledgeView};
use dyncode_dynet::graph::Graph;
use dyncode_dynet::trace::DeltaTrace;
use dyncode_scenarios::dct::{decode_trace, encode_trace, DctReader, DctWriter};
use dyncode_scenarios::{ChurnAdversary, EdgeMarkovAdversary, ScenarioKind, WaypointAdversary};
use proptest::prelude::*;
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn check_all_rounds_connected(adv: &mut dyn Adversary, n: usize, rounds: usize, seed: u64) {
    let view = KnowledgeView::blank(n, 2);
    let mut rng = StdRng::seed_from_u64(seed);
    for round in 0..rounds {
        let g = adv.topology(round, &view, &mut rng);
        assert_eq!(g.num_nodes(), n, "{} at round {round}", adv.name());
        assert!(
            g.is_connected(),
            "{} disconnected at round {round} (n={n}, seed={seed})",
            adv.name()
        );
    }
}

/// Connectivity of the subgraph induced on `active`.
fn induced_connected(g: &Graph, active: &[bool]) -> bool {
    let ids: Vec<usize> = (0..g.num_nodes()).filter(|&u| active[u]).collect();
    if ids.len() <= 1 {
        return true;
    }
    let mut sub = Graph::empty(ids.len());
    for (a, &u) in ids.iter().enumerate() {
        for (b, &v) in ids.iter().enumerate().skip(a + 1) {
            if g.has_edge(u, v) {
                sub.add_edge(a, b);
            }
        }
    }
    sub.is_connected()
}

proptest! {
    #[test]
    fn edge_markov_stays_connected(
        n in 1usize..28,
        seed in any::<u64>(),
        up_pm in 1u32..400,
        down_pm in 0u32..1000,
    ) {
        let mut adv = EdgeMarkovAdversary::new(up_pm as f64 / 1000.0, down_pm as f64 / 1000.0);
        check_all_rounds_connected(&mut adv, n, 20, seed);
    }

    #[test]
    fn waypoint_stays_connected(
        n in 1usize..24,
        seed in any::<u64>(),
        radius_pm in 10u32..800,
        speed_pm in 1u32..300,
    ) {
        let mut adv = WaypointAdversary::new(radius_pm as f64 / 1000.0, speed_pm as f64 / 1000.0);
        check_all_rounds_connected(&mut adv, n, 20, seed);
    }

    #[test]
    fn churn_stays_connected_on_full_and_active_sets(
        n in 2usize..24,
        seed in any::<u64>(),
        rate_pm in 0u32..600,
    ) {
        let mut adv = ChurnAdversary::new(
            EdgeMarkovAdversary::new(0.08, 0.2),
            rate_pm as f64 / 1000.0,
        );
        let view = KnowledgeView::blank(n, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        for round in 0..25 {
            let g = adv.topology(round, &view, &mut rng);
            prop_assert!(g.is_connected(), "full graph disconnected at round {round}");
            prop_assert!(
                induced_connected(&g, adv.active()),
                "active core disconnected at round {round}"
            );
        }
    }

    #[test]
    fn parsed_scenarios_stay_connected(which in 0usize..4, n in 1usize..20, seed in any::<u64>()) {
        let spec = [
            "edge-markov(0.05,0.25)",
            "waypoint(0.3,0.06)",
            "churn(0.2,random-connected)",
            "churn(0.1,waypoint(0.4,0.05))",
        ][which];
        let mut adv = ScenarioKind::parse(spec).unwrap().build();
        check_all_rounds_connected(adv.as_mut(), n, 15, seed);
    }

    /// encode(trace) |> stream-decode == trace, on random schedules that
    /// deliberately include an empty-delta round (a repeated graph) and a
    /// full-rewire round (path → disjoint star edge set).
    #[test]
    fn dct_encode_stream_decode_round_trips(
        n in 2usize..24,
        rounds in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adv = EdgeMarkovAdversary::new(0.1, 0.3);
        let view = KnowledgeView::blank(n, 1);
        let mut graphs: Vec<Graph> =
            (0..rounds).map(|r| adv.topology(r, &view, &mut rng)).collect();
        // Force an empty delta: repeat the last graph verbatim.
        graphs.push(graphs[rounds - 1].clone());
        // Force a full rewire: a path in a random order shares no edge
        // representation guarantees with the Markov state.
        let order = dyncode_dynet::generators::random_permutation(n, &mut rng);
        graphs.push(dyncode_dynet::generators::path_with_order(&order));

        let mut trace = DeltaTrace::new(0);
        for g in &graphs {
            trace.push(g);
        }
        let trace_seed = rng.random::<u64>();
        let bytes = encode_trace(&trace, trace_seed);

        // In-memory decode: exact DeltaTrace equality.
        let (header, back) = decode_trace(&bytes).unwrap();
        prop_assert_eq!(header.n, n);
        prop_assert_eq!(header.rounds, graphs.len() as u64);
        prop_assert_eq!(header.seed, trace_seed);
        prop_assert_eq!(&back, &trace);

        // Streaming decode: graph-by-graph equality, then clean EOF.
        let mut reader = DctReader::new(std::io::Cursor::new(bytes)).unwrap();
        for (r, g) in graphs.iter().enumerate() {
            let decoded = reader.next_graph().unwrap();
            prop_assert_eq!(decoded.as_ref(), Some(g), "round {}", r);
        }
        prop_assert!(reader.next_graph().unwrap().is_none());
    }

    /// Writing graphs and writing their flip lists produce identical bytes.
    #[test]
    fn push_and_push_flips_agree(n in 2usize..16, rounds in 1usize..10, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adv = WaypointAdversary::new(0.4, 0.1);
        let view = KnowledgeView::blank(n, 1);
        let graphs: Vec<Graph> =
            (0..rounds).map(|r| adv.topology(r, &view, &mut rng)).collect();
        let mut trace = DeltaTrace::new(0);
        for g in &graphs {
            trace.push(g);
        }

        let mut by_graph = DctWriter::new(std::io::Cursor::new(Vec::new()), n, 1).unwrap();
        for g in &graphs {
            by_graph.push(g).unwrap();
        }
        let a = by_graph.finish().unwrap().into_inner();

        let mut by_flips = DctWriter::new(std::io::Cursor::new(Vec::new()), n, 1).unwrap();
        for r in 0..trace.len() {
            by_flips.push_flips(trace.flips(r)).unwrap();
        }
        let b = by_flips.finish().unwrap().into_inner();
        prop_assert_eq!(a, b);
    }
}
