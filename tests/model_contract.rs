//! Integration checks of the model's contracts: bit budgets under strict
//! accounting, adversary validation, and the Lemma 5.3 / Corollary 2.6
//! shape guarantees at integration scale.

use dyncode::prelude::*;
use dyncode_dynet::adversaries::{RandomConnectedAdversary, ShuffledPathAdversary};
use dyncode_dynet::adversary::KnowledgeView;
use dyncode_dynet::Graph;
use rand::rngs::StdRng;

#[test]
fn every_protocol_respects_a_2b_message_budget() {
    // The paper allows O(b)-bit messages; all our protocols stay within
    // 2b (coded messages carry header + payload). Strict mode panics on
    // violation, so completing is the assertion.
    let params = Params::new(12, 12, 5, 15);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 3);
    let budget = 2 * params.b as u64;
    macro_rules! strict_run {
        ($proto:expr, $cap:expr) => {{
            let mut p = $proto;
            let mut adv = ShuffledPathAdversary;
            let r = run(
                &mut p,
                &mut adv,
                &SimConfig::with_max_rounds($cap).strict_bits(budget),
                5,
            );
            assert!(r.completed);
            assert!(r.max_message_bits <= budget);
        }};
    }
    strict_run!(TokenForwarding::baseline(&inst), 50_000);
    strict_run!(GreedyForward::new(&inst), 100_000);
    strict_run!(PriorityForward::new(&inst), 100_000);
    strict_run!(NaiveCoded::new(&inst), 100_000);
    strict_run!(Centralized::new(&inst), 20_000);
    // Indexed broadcast's wire is k + d bits by Lemma 5.3 (its own budget).
    let mut p = IndexedBroadcast::new(&inst);
    let wire = p.wire_bits();
    let mut adv = ShuffledPathAdversary;
    let r = run(
        &mut p,
        &mut adv,
        &SimConfig::with_max_rounds(20_000).strict_bits(wire),
        5,
    );
    assert!(r.completed);
}

#[test]
fn indexed_broadcast_scales_as_n_plus_k() {
    // Lemma 5.3 shape: rounds/(n + k) bounded across sizes.
    let mut ratios = Vec::new();
    for (n, k) in [(8usize, 8usize), (16, 16), (32, 32), (32, 8)] {
        let params = Params::new(n, k, 6, 64);
        let inst = Instance::generate(params, Placement::RoundRobin, 2);
        let mut p = IndexedBroadcast::new(&inst);
        let mut adv = ShuffledPathAdversary;
        let r = run(
            &mut p,
            &mut adv,
            &SimConfig::with_max_rounds(50 * (n + k)),
            7,
        );
        assert!(r.completed);
        ratios.push(r.rounds as f64 / (n + k) as f64);
    }
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    assert!(max < 6.0, "rounds/(n+k) ratios {ratios:?} should stay O(1)");
}

#[test]
fn centralized_is_linear_while_forwarding_is_quadratic() {
    // Corollary 2.6 vs Theorem 2.1 at b = d: Θ(n) vs Θ(nk).
    let mut ratio_growth = Vec::new();
    for n in [12usize, 24, 48] {
        let params = Params::new(n, n, 8, 8);
        let inst = Instance::generate(params, Placement::OneTokenPerNode, 4);
        let mut c = Centralized::new(&inst);
        let mut adv = RandomConnectedAdversary::new(1);
        let rc = run(&mut c, &mut adv, &SimConfig::with_max_rounds(100 * n), 3);
        assert!(rc.completed);
        let mut f = TokenForwarding::baseline(&inst);
        let mut adv2 = RandomConnectedAdversary::new(1);
        let rf = run(&mut f, &mut adv2, &SimConfig::with_max_rounds(2 * n * n), 3);
        assert!(rf.completed);
        ratio_growth.push(rf.rounds as f64 / rc.rounds as f64);
    }
    // The forwarding/centralized gap must widen with n (≈ linearly).
    assert!(
        ratio_growth[2] > 1.5 * ratio_growth[0],
        "separation should grow with n: {ratio_growth:?}"
    );
}

struct DisconnectedAdversary;

impl Adversary for DisconnectedAdversary {
    fn name(&self) -> String {
        "disconnected".into()
    }
    fn topology(&mut self, _r: usize, view: &KnowledgeView, _g: &mut StdRng) -> Graph {
        Graph::empty(view.num_nodes())
    }
}

#[test]
#[should_panic(expected = "disconnected")]
fn simulator_rejects_disconnected_topologies() {
    let params = Params::new(6, 6, 4, 8);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 1);
    let mut p = TokenForwarding::baseline(&inst);
    run(
        &mut p,
        &mut DisconnectedAdversary,
        &SimConfig::with_max_rounds(10),
        1,
    );
}

#[test]
#[should_panic(expected = "exceeded the message budget")]
fn strict_accounting_rejects_over_budget_forwarding_messages() {
    // Error path of the O(b) accounting: token forwarding speaks d-bit
    // messages, so a (d-1)-bit budget must abort the run immediately.
    let params = Params::new(8, 8, 6, 12);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 2);
    let mut p = TokenForwarding::baseline(&inst);
    let mut adv = ShuffledPathAdversary;
    run(
        &mut p,
        &mut adv,
        &SimConfig::with_max_rounds(1_000).strict_bits(params.d as u64 - 1),
        9,
    );
}

#[test]
#[should_panic(expected = "exceeded the message budget")]
fn strict_accounting_rejects_indexed_broadcast_one_bit_short() {
    // The tightest possible violation: indexed broadcast's wire format is
    // exactly `wire_bits()` on every round, so a budget one bit below it
    // must be rejected (and, per the test above this one in the ok-path
    // suite, exactly `wire_bits()` is accepted).
    let params = Params::new(10, 10, 5, 15);
    let inst = Instance::generate(params, Placement::RoundRobin, 4);
    let mut p = IndexedBroadcast::new(&inst);
    let wire = p.wire_bits();
    let mut adv = RandomConnectedAdversary::new(1);
    run(
        &mut p,
        &mut adv,
        &SimConfig::with_max_rounds(10_000).strict_bits(wire - 1),
        4,
    );
}

#[test]
fn strict_accounting_charges_the_compose_step_not_delivery() {
    // The budget applies to what a node *broadcasts*; silence is free. A
    // run under a generous budget must report max_message_bits equal to
    // the largest composed message, and that maximum must be reached
    // (the accounting is tight, not an over-approximation).
    let params = Params::new(8, 8, 5, 10);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 6);
    let mut p = TokenForwarding::baseline(&inst);
    let mut adv = ShuffledPathAdversary;
    let r = run(
        &mut p,
        &mut adv,
        &SimConfig::with_max_rounds(50_000).strict_bits(10_000),
        6,
    );
    assert!(r.completed);
    assert!(r.max_message_bits > 0, "someone must have spoken");
    assert!(r.total_bits >= r.max_message_bits);
    // Re-running with the observed maximum as the budget must succeed:
    // the reported max is exactly the strictest passing budget.
    let mut p2 = TokenForwarding::baseline(&inst);
    let mut adv2 = ShuffledPathAdversary;
    let r2 = run(
        &mut p2,
        &mut adv2,
        &SimConfig::with_max_rounds(50_000).strict_bits(r.max_message_bits),
        6,
    );
    assert!(r2.completed);
    assert_eq!(r2.max_message_bits, r.max_message_bits);
}

#[test]
fn recorded_schedules_replay_across_protocols() {
    // Record the topologies one protocol saw; replay them for another:
    // paired comparison on the identical schedule.
    use dyncode_dynet::trace::{RecordingAdversary, ReplayAdversary};
    let params = Params::new(10, 10, 5, 10);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 8);

    let (mut rec, trace) = RecordingAdversary::new(ShuffledPathAdversary);
    let mut fwd = TokenForwarding::baseline(&inst);
    let r1 = run(&mut fwd, &mut rec, &SimConfig::with_max_rounds(50_000), 4);
    assert!(r1.completed);

    drop(rec); // last recorder handle: from_shared takes the trace without copying
    let mut replay = ReplayAdversary::from_shared(trace);
    let mut coded = GreedyForward::new(&inst);
    let r2 = run(
        &mut coded,
        &mut replay,
        &SimConfig::with_max_rounds(200_000),
        4,
    );
    assert!(r2.completed && fully_disseminated(&coded));
}
