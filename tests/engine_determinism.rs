//! The campaign engine's determinism contract: a campaign run with 1
//! thread and with 8 threads produces **byte-identical** JSON artifacts —
//! same seeds, same `RunResult`s, per-round history included.
//!
//! This is what makes `--threads N` safe to use everywhere: parallelism
//! can change only wall-clock, never results. The contract holds because
//! (a) every `(cell, seed)` run re-derives all randomness from its own
//! seed (`dyncode_core::runner::run_one`), and (b) the executor returns
//! outcomes in submission order regardless of completion order.

use dyncode::engine::{run_campaign, AdversaryKind, Campaign, CapRule, Dim, Engine, ProtocolSpec};

fn demo_campaign() -> Campaign {
    Campaign::builder("determinism", "engine determinism check")
        .protocol(ProtocolSpec::TokenForwarding)
        .adversaries(vec![
            AdversaryKind::ShuffledPath,
            AdversaryKind::Bottleneck,
            AdversaryKind::KnowledgeAdaptive,
        ])
        .ns(&[8, 16])
        .k(Dim::N)
        .d(Dim::LgN1)
        .b(Dim::MulD(2))
        .seeds(&[1, 2, 3])
        .cap(CapRule::MulNN(10))
        .record_history(true)
        .build()
        .expect("valid campaign")
}

#[test]
fn threads_1_and_8_produce_byte_identical_artifacts() {
    let campaign = demo_campaign();
    let serial = run_campaign(&Engine::new(1), &campaign);
    let parallel = run_campaign(&Engine::new(8), &campaign);

    // The strong form: identical artifact bytes.
    assert_eq!(
        serial.to_json_string(),
        parallel.to_json_string(),
        "parallel artifact differs from serial artifact"
    );

    // And the pieces, so a failure localizes: same cells, same per-seed
    // RunResults, per-round history included.
    assert_eq!(serial.cells.len(), 2 * 3);
    for (cs, cp) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(cs.label, cp.label);
        assert_eq!(cs.stats, cp.stats);
        assert_eq!(cs.runs.len(), 3, "{}", cs.label);
        for (rs, rp) in cs.runs.iter().zip(&cp.runs) {
            assert_eq!(rs.seed, rp.seed);
            assert_eq!(rs.rounds, rp.rounds);
            assert_eq!(rs.total_bits, rp.total_bits);
            assert!(!rs.history.is_empty(), "history was requested");
            assert_eq!(rs.history, rp.history);
        }
        assert!(cs.stats.all_completed(), "{}", cs.label);
    }
}

#[test]
fn parsed_spec_campaigns_are_deterministic_too() {
    let text = "
        id = parsed-determinism
        protocol = greedy-forward
        adversaries = shuffled-path
        n = 8, 12
        k = n
        d = lgn+1
        b = 2d
        seeds = 4, 5
        cap = 100nn
    ";
    let campaign = Campaign::parse(text).expect("spec parses");
    let a = run_campaign(&Engine::new(2), &campaign);
    let b = run_campaign(&Engine::new(5), &campaign);
    assert_eq!(a.to_json_string(), b.to_json_string());
    assert!(a.cells.iter().all(|c| c.stats.all_completed()));
}

#[test]
fn artifact_bytes_round_trip_through_the_parser() {
    let campaign = demo_campaign();
    let artifact = run_campaign(&Engine::new(4), &campaign);
    let text = artifact.to_json_string();
    let back = dyncode::engine::Artifact::parse(&text).expect("parse back");
    assert_eq!(back, artifact);
    assert_eq!(back.to_json_string(), text);
}

/// The e18-style scenario campaign honors the same determinism contract
/// as the classic suites: stochastic workload adversaries (edge-Markov,
/// waypoint, churn) re-derive all randomness from each cell's seed, so
/// `--threads 1` and `--threads 8` artifacts are byte-identical.
#[test]
fn scenario_campaign_is_thread_count_independent() {
    let text = "
        id = scenario-determinism
        protocol = token-forwarding
        scenario = edge-markov(0.1,0.3), waypoint(0.3,0.08), churn(0.2,random-connected)
        n = 8, 12
        k = n
        d = lgn+1
        b = 2d
        seeds = 1, 2
        cap = 60nn
        record_history = true
    ";
    let campaign = Campaign::parse(text).expect("spec parses");
    let serial = run_campaign(&Engine::new(1), &campaign);
    let parallel = run_campaign(&Engine::new(8), &campaign);
    assert_eq!(
        serial.to_json_string(),
        parallel.to_json_string(),
        "scenario artifact differs between 1 and 8 threads"
    );
    assert_eq!(serial.cells.len(), 2 * 3);
    for cell in &serial.cells {
        assert!(cell.stats.all_completed(), "{}", cell.label);
        for run in &cell.runs {
            assert!(!run.history.is_empty(), "{}", cell.label);
        }
    }
}

/// The quorum-family determinism contract: a campaign crossing both
/// quorum specs with degraded delivery models and a churn adversary —
/// on the fast kernel via `kernel = auto` — produces byte-identical
/// artifacts at 1 and 8 threads, and every cell reaches its quorum goal.
#[test]
fn quorum_campaign_is_thread_count_independent() {
    let text = "
        id = quorum-determinism
        protocol = quorum-watermark(f=1), quorum-decide(f=2,q=4)
        adversaries = shuffled-path
        scenario = churn(0.15,random-connected)
        delivery = reliable, lossy(eps=0.2)
        kernel = auto
        n = 12, 16
        k = n
        d = lgn+1
        b = 2d
        seeds = 1, 2
        cap = 500nn
        record_history = true
    ";
    let campaign = Campaign::parse(text).expect("spec parses");
    let serial = run_campaign(&Engine::new(1), &campaign);
    let parallel = run_campaign(&Engine::new(8), &campaign);
    assert_eq!(
        serial.to_json_string(),
        parallel.to_json_string(),
        "quorum artifact differs between 1 and 8 threads"
    );
    // 2 sizes × 2 deliveries × 2 protocols × 2 adversaries.
    assert_eq!(serial.cells.len(), 2 * 2 * 2 * 2);
    for cell in &serial.cells {
        assert!(cell.stats.all_completed(), "{}", cell.label);
    }
}

/// The protocol-grid determinism contract: a campaign sweeping the
/// `protocol =` axis across heterogeneous registry specs — forwarding,
/// coding over three fields, configured variants, and the charged-rounds
/// patch model — produces byte-identical artifacts at 1 and 8 threads,
/// and every cell's erased-dispatch result equals the monomorphized
/// simulator's (checked here for the protocol the old enum could name
/// *and* the ones it could not).
#[test]
fn protocol_grid_campaign_is_thread_count_independent_and_erased_equals_mono() {
    let text = "
        id = protocol-grid-determinism
        protocol = token-forwarding, pipelined-forwarding(8), greedy-forward(gather=2,bcast=3)
        protocol = priority-forward, indexed-broadcast, field-broadcast(gf256)
        protocol = field-broadcast(m61,det=5), centralized, patch-indexed
        adversaries = shuffled-path
        scenario = edge-markov(0.1,0.3)
        n = 8, 12
        k = n
        d = lgn+1
        b = 2d
        t = 4
        seeds = 1, 2
        cap = 500nn
        record_history = true
    ";
    let campaign = Campaign::parse(text).expect("spec parses");
    let serial = run_campaign(&Engine::new(1), &campaign);
    let parallel = run_campaign(&Engine::new(8), &campaign);
    assert_eq!(
        serial.to_json_string(),
        parallel.to_json_string(),
        "protocol-grid artifact differs between 1 and 8 threads"
    );
    // 2 sizes × 1 T × 9 protocols × 2 adversaries.
    assert_eq!(serial.cells.len(), 2 * 9 * 2);
    for cell in &serial.cells {
        assert!(cell.stats.all_completed(), "{}", cell.label);
    }

    // Erased = monomorphized, spot-checked against hand-built protocols
    // on one grid point of the same campaign.
    use dyncode::core::params::{Instance, Params, Placement};
    use dyncode::core::protocols::{GreedyConfig, GreedyForward};
    use dyncode::core::runner::run_spec;
    use dyncode::dynet::adversaries::ShuffledPathAdversary;
    use dyncode::dynet::adversary::Adversary;
    use dyncode::dynet::simulator::{run, SimConfig};

    let inst = Instance::generate(Params::new(8, 8, 4, 8), Placement::OneTokenPerNode, 42);
    let cfg = SimConfig::with_max_rounds(500 * 64).recording();
    let spec = ProtocolSpec::parse("greedy-forward(gather=2,bcast=3)").unwrap();
    let adv = || Box::new(ShuffledPathAdversary) as Box<dyn Adversary>;
    let erased = run_spec(&spec, &inst, 1, &adv, &cfg, 2);
    let mut mono = GreedyForward::with_config(
        &inst,
        GreedyConfig {
            gather_mult: 2,
            broadcast_mult: 3,
        },
    );
    let direct = run(&mut mono, &mut ShuffledPathAdversary, &cfg, 2);
    assert_eq!(erased, direct, "erased dispatch must not perturb the run");
}

/// The record/replay acceptance check: a `.dct` trace recorded from a
/// stochastic scenario, replayed through the streaming replay adversary
/// *and* through `dynet`'s in-memory `ReplayAdversary`, reproduces the
/// original `RunResult` **exactly** — rounds, bits, and per-round
/// history. This works because the simulator feeds adversaries a private
/// RNG stream: swapping the live model for a replay leaves the
/// protocol's coins untouched.
#[test]
fn recorded_trace_replay_reproduces_the_run_exactly() {
    use dyncode::dynet::simulator::{run, SimConfig};
    use dyncode::dynet::trace::ReplayAdversary;
    use dyncode::prelude::*;
    use dyncode::scenarios::dct::decode_trace;
    use dyncode::scenarios::{record_scenario, DctReplay, ScenarioKind};
    use std::io::Cursor;

    let (n, seed) = (14, 9u64);
    let kind = ScenarioKind::parse("churn(0.15,edge-markov(0.1,0.3))").unwrap();
    let params = Params::new(n, n, 5, 10);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 3);
    let cfg = SimConfig::with_max_rounds(60 * n * n).recording();

    // The live run against the stochastic model.
    let mut live_adv = kind.build();
    let mut p1 = TokenForwarding::baseline(&inst);
    let live = run(&mut p1, live_adv.as_mut(), &cfg, seed);
    assert!(live.completed);

    // Record the schedule offline from the same seed (same private
    // adversary stream ⇒ same topologies), long enough to cover the run.
    let mut sink = Cursor::new(Vec::new());
    record_scenario(&kind, n, live.rounds + 5, seed, &mut sink).expect("record");
    let bytes = sink.into_inner();

    let fingerprint = |r: &RunResult| {
        (
            r.rounds,
            r.completed,
            r.total_bits,
            r.max_message_bits,
            r.history
                .iter()
                .map(|h| {
                    (
                        h.round,
                        h.edges,
                        h.bits,
                        h.min_dim,
                        h.max_dim,
                        h.total_tokens,
                        h.done,
                    )
                })
                .collect::<Vec<_>>(),
        )
    };

    // Streaming replay (.dct reader straight off the bytes).
    let mut replay = DctReplay::new(Cursor::new(bytes.clone())).expect("valid trace");
    let mut p2 = TokenForwarding::baseline(&inst);
    let replayed = run(&mut p2, &mut replay, &cfg, seed);
    assert_eq!(
        fingerprint(&live),
        fingerprint(&replayed),
        "streaming .dct replay must reproduce the RunResult exactly"
    );

    // In-memory replay through dynet's ReplayAdversary (decoded trace).
    let (_, trace) = decode_trace(&bytes).expect("decode");
    let mut replay2 = ReplayAdversary::new(trace);
    let mut p3 = TokenForwarding::baseline(&inst);
    let replayed2 = run(&mut p3, &mut replay2, &cfg, seed);
    assert_eq!(
        fingerprint(&live),
        fingerprint(&replayed2),
        "in-memory replay must reproduce the RunResult exactly"
    );
}
