//! The campaign engine's determinism contract: a campaign run with 1
//! thread and with 8 threads produces **byte-identical** JSON artifacts —
//! same seeds, same `RunResult`s, per-round history included.
//!
//! This is what makes `--threads N` safe to use everywhere: parallelism
//! can change only wall-clock, never results. The contract holds because
//! (a) every `(cell, seed)` run re-derives all randomness from its own
//! seed (`dyncode_core::runner::run_one`), and (b) the executor returns
//! outcomes in submission order regardless of completion order.

use dyncode::engine::{run_campaign, AdversaryKind, Campaign, CapRule, Dim, Engine, ProtocolKind};

fn demo_campaign() -> Campaign {
    Campaign::builder("determinism", "engine determinism check")
        .protocol(ProtocolKind::TokenForwarding)
        .adversaries(vec![
            AdversaryKind::ShuffledPath,
            AdversaryKind::Bottleneck,
            AdversaryKind::KnowledgeAdaptive,
        ])
        .ns(&[8, 16])
        .k(Dim::N)
        .d(Dim::LgN1)
        .b(Dim::MulD(2))
        .seeds(&[1, 2, 3])
        .cap(CapRule::MulNN(10))
        .record_history(true)
        .build()
        .expect("valid campaign")
}

#[test]
fn threads_1_and_8_produce_byte_identical_artifacts() {
    let campaign = demo_campaign();
    let serial = run_campaign(&Engine::new(1), &campaign);
    let parallel = run_campaign(&Engine::new(8), &campaign);

    // The strong form: identical artifact bytes.
    assert_eq!(
        serial.to_json_string(),
        parallel.to_json_string(),
        "parallel artifact differs from serial artifact"
    );

    // And the pieces, so a failure localizes: same cells, same per-seed
    // RunResults, per-round history included.
    assert_eq!(serial.cells.len(), 2 * 3);
    for (cs, cp) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(cs.label, cp.label);
        assert_eq!(cs.stats, cp.stats);
        assert_eq!(cs.runs.len(), 3, "{}", cs.label);
        for (rs, rp) in cs.runs.iter().zip(&cp.runs) {
            assert_eq!(rs.seed, rp.seed);
            assert_eq!(rs.rounds, rp.rounds);
            assert_eq!(rs.total_bits, rp.total_bits);
            assert!(!rs.history.is_empty(), "history was requested");
            assert_eq!(rs.history, rp.history);
        }
        assert!(cs.stats.all_completed(), "{}", cs.label);
    }
}

#[test]
fn parsed_spec_campaigns_are_deterministic_too() {
    let text = "
        id = parsed-determinism
        protocol = greedy-forward
        adversaries = shuffled-path
        n = 8, 12
        k = n
        d = lgn+1
        b = 2d
        seeds = 4, 5
        cap = 100nn
    ";
    let campaign = Campaign::parse(text).expect("spec parses");
    let a = run_campaign(&Engine::new(2), &campaign);
    let b = run_campaign(&Engine::new(5), &campaign);
    assert_eq!(a.to_json_string(), b.to_json_string());
    assert!(a.cells.iter().all(|c| c.stats.all_completed()));
}

#[test]
fn artifact_bytes_round_trip_through_the_parser() {
    let campaign = demo_campaign();
    let artifact = run_campaign(&Engine::new(4), &campaign);
    let text = artifact.to_json_string();
    let back = dyncode::engine::Artifact::parse(&text).expect("parse back");
    assert_eq!(back, artifact);
    assert_eq!(back.to_json_string(), text);
}
