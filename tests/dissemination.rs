//! Cross-crate integration: every dissemination protocol delivers the
//! exact token set to every node, against every adversary family, across
//! seeds and placements.

use dyncode::prelude::*;
use dyncode_dynet::adversaries::standard_suite;

fn check<P: Protocol>(mut proto: P, adv: &mut dyn Adversary, cap: usize, seed: u64) -> usize {
    let r = run(&mut proto, adv, &SimConfig::with_max_rounds(cap), seed);
    assert!(
        r.completed,
        "protocol failed under {} (seed {seed})",
        adv.name()
    );
    assert!(
        fully_disseminated(&proto),
        "incomplete dissemination under {} (seed {seed})",
        adv.name()
    );
    r.rounds
}

#[test]
fn all_protocols_all_adversaries_one_token_per_node() {
    let params = Params::new(14, 14, 6, 12);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 5);
    for seed in [1u64, 2] {
        for adv in &mut standard_suite() {
            check(
                TokenForwarding::baseline(&inst),
                adv.as_mut(),
                100_000,
                seed,
            );
            check(GreedyForward::new(&inst), adv.as_mut(), 200_000, seed);
            check(PriorityForward::new(&inst), adv.as_mut(), 200_000, seed);
            check(NaiveCoded::new(&inst), adv.as_mut(), 200_000, seed);
            check(IndexedBroadcast::new(&inst), adv.as_mut(), 50_000, seed);
            check(Centralized::new(&inst), adv.as_mut(), 50_000, seed);
        }
    }
}

#[test]
fn skewed_placements_disseminate() {
    let params = Params::new(12, 12, 6, 12);
    for placement in [Placement::AllAtNode(5), Placement::Clustered(3)] {
        let inst = Instance::generate(params, placement, 9);
        for adv in &mut standard_suite() {
            check(TokenForwarding::baseline(&inst), adv.as_mut(), 100_000, 3);
            check(GreedyForward::new(&inst), adv.as_mut(), 200_000, 3);
            check(PriorityForward::new(&inst), adv.as_mut(), 200_000, 3);
            check(IndexedBroadcast::new(&inst), adv.as_mut(), 50_000, 3);
            check(Centralized::new(&inst), adv.as_mut(), 50_000, 3);
        }
    }
}

#[test]
fn fewer_tokens_than_nodes() {
    let params = Params::new(16, 5, 6, 12);
    let inst = Instance::generate(params, Placement::RoundRobin, 4);
    for adv in &mut standard_suite() {
        check(TokenForwarding::baseline(&inst), adv.as_mut(), 50_000, 8);
        check(GreedyForward::new(&inst), adv.as_mut(), 100_000, 8);
        check(IndexedBroadcast::new(&inst), adv.as_mut(), 20_000, 8);
    }
}

#[test]
fn t_stable_wrapping_preserves_correctness() {
    let params = Params::new(12, 12, 6, 12);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 6);
    for t in [2usize, 5, 11] {
        let mut adv = TStable::new(dyncode_dynet::adversaries::ShuffledPathAdversary, t);
        check(TokenForwarding::pipelined(&inst, t), &mut adv, 100_000, 2);
        let mut adv2 = TStable::new(dyncode_dynet::adversaries::ShuffledPathAdversary, t);
        check(GreedyForward::new(&inst), &mut adv2, 200_000, 2);
    }
}

#[test]
fn t_interval_connectivity_preserves_correctness() {
    // The KLO stability notion (stable spanning tree + churn): every
    // protocol must still disseminate — connectivity is all they assume.
    let params = Params::new(12, 12, 6, 12);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 10);
    for t in [2usize, 6] {
        let mut adv = dyncode_dynet::adversaries::TIntervalAdversary::new(t, 3);
        check(TokenForwarding::baseline(&inst), &mut adv, 100_000, 4);
        let mut adv2 = dyncode_dynet::adversaries::TIntervalAdversary::new(t, 3);
        check(GreedyForward::new(&inst), &mut adv2, 200_000, 4);
        let mut adv3 = dyncode_dynet::adversaries::TIntervalAdversary::new(t, 3);
        check(IndexedBroadcast::new(&inst), &mut adv3, 50_000, 4);
    }
}

#[test]
fn recorded_history_tracks_monotone_progress() {
    let params = Params::new(10, 10, 5, 10);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 11);
    let mut proto = IndexedBroadcast::new(&inst);
    let mut adv = dyncode_dynet::adversaries::ShuffledPathAdversary;
    let r = run(
        &mut proto,
        &mut adv,
        &SimConfig::with_max_rounds(10_000).recording(),
        6,
    );
    assert!(r.completed);
    assert_eq!(r.history.len(), r.rounds);
    for w in r.history.windows(2) {
        assert!(w[1].min_dim >= w[0].min_dim, "rank must be monotone");
        assert!(w[1].done >= w[0].done, "done count must be monotone");
    }
    assert_eq!(r.history.last().unwrap().done, params.n);
    let bits: u64 = r.history.iter().map(|h| h.bits).sum();
    assert_eq!(bits, r.total_bits);
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let params = Params::new(10, 10, 5, 10);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 7);
    let rounds: Vec<usize> = (0..2)
        .map(|_| {
            let mut adv = dyncode_dynet::adversaries::RandomConnectedAdversary::new(2);
            check(GreedyForward::new(&inst), &mut adv, 200_000, 77)
        })
        .collect();
    assert_eq!(rounds[0], rounds[1], "same seed must reproduce the run");
}
