//! The telemetry non-perturbation contract: running a campaign with every
//! obs sink enabled — in-memory aggregator, JSONL event writer, metrics
//! recording — produces an artifact **byte-identical** to the
//! telemetry-off run, at any thread count.
//!
//! This is what makes `--events`/`--metrics` safe to leave on in CI and
//! long-running serve loops: telemetry observes runs, it never steers
//! them. The contract holds because instrumentation only *reads* the
//! simulation (wall clocks, counters) and every randomness source is
//! derived from seeds, never from timing.

use dyncode::engine::{AdversaryKind, Campaign, CapRule, Dim, Engine, Kernel, ProtocolSpec};
use dyncode_store::{run_campaign_stored, RunOptions, Store};

fn demo_campaign() -> Campaign {
    // Fast-kernel cells so the kernel phase spans (kernel.csr / gather /
    // eliminate / compose) are exercised, plus runner + executor spans.
    Campaign::builder("obs-determinism", "telemetry non-perturbation check")
        .protocol(ProtocolSpec::parse("field-broadcast(gf2)").expect("registry spec"))
        .adversaries(vec![AdversaryKind::ShuffledPath, AdversaryKind::Bottleneck])
        .ns(&[8, 16])
        .k(Dim::N)
        .d(Dim::LgN1)
        .b(Dim::MulD(2))
        .seeds(&[1, 2])
        .cap(CapRule::MulNN(10))
        .kernel(Kernel::Fast)
        .record_history(true)
        .build()
        .expect("valid campaign")
}

fn run_bytes(threads: usize, store: Option<&Store>) -> String {
    let campaign = demo_campaign();
    let opts = RunOptions {
        store,
        ..RunOptions::default()
    };
    let (artifact, _) =
        run_campaign_stored(&Engine::new(threads), &campaign, &opts).expect("campaign runs");
    artifact.to_json_string()
}

/// One test function on purpose: sinks are process-global, so the
/// off-baseline must be captured before any sink is installed and the
/// whole sequence must not interleave with other tests in this binary.
#[test]
fn artifacts_are_byte_identical_with_sinks_on_and_off() {
    let dir = std::env::temp_dir().join(format!("dyncode-obs-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let events_path = dir.join("events.jsonl");
    let metrics_path = dir.join("metrics.json");
    let store_dir = dir.join("store");

    // Telemetry off: the baseline bytes (serial, no store).
    assert!(!dyncode_obs::enabled(), "no sink may be pre-installed");
    let baseline = run_bytes(1, None);

    // Telemetry fully on: JSONL + metrics session plus an extra in-memory
    // aggregator, serial and parallel, cold and warm store passes.
    let memory = std::sync::Arc::new(dyncode_obs::MemorySink::default());
    let memory_id = dyncode_obs::install(memory.clone());
    {
        let _session =
            dyncode_obs::Session::start(Some(events_path.as_path()), Some(metrics_path.as_path()))
                .expect("session starts");
        assert!(dyncode_obs::enabled());
        assert_eq!(
            run_bytes(1, None),
            baseline,
            "serial run perturbed by sinks"
        );
        assert_eq!(
            run_bytes(4, None),
            baseline,
            "parallel run perturbed by sinks"
        );
        let store = Store::open(&store_dir).expect("store opens");
        assert_eq!(
            run_bytes(4, Some(&store)),
            baseline,
            "cold store run perturbed by sinks"
        );
        assert_eq!(
            run_bytes(4, Some(&store)),
            baseline,
            "warm store run perturbed by sinks"
        );
    }
    dyncode_obs::uninstall(memory_id);
    assert!(!dyncode_obs::enabled(), "session drop must uninstall sinks");

    // Telemetry off again: still the same bytes.
    assert_eq!(run_bytes(1, None), baseline, "bytes changed after session");

    // The event stream is strictly valid and saw the expected shapes.
    let text = std::fs::read_to_string(&events_path).expect("events file written");
    let events = dyncode_obs::parse_events(&text).expect("stream is schema-valid");
    let saw = |name: &str| events.iter().any(|e| e.name == name);
    for name in [
        "runner.setup",
        "runner.run",
        "runner.teardown",
        "executor.map",
        "kernel.csr",
        "kernel.gather",
        "kernel.eliminate",
        "kernel.compose",
    ] {
        assert!(saw(name), "no {name} event in the stream");
    }
    // The in-memory aggregator observed the same stream shape.
    assert!(memory.events().iter().any(|e| e.name == "runner.run"));
    // Store counters flow through the obs registry — the same numbers
    // write_sidecar renders, so the sidecar reconciles with `--events`.
    let seed_runs = 2 * 2 * 2; // adversaries x ns x seeds
    assert!(dyncode_obs::metrics::counter_value("store.puts") >= seed_runs);
    assert!(dyncode_obs::metrics::counter_value("store.hits") >= seed_runs);

    // The metrics snapshot file parses under its own schema marker.
    let metrics_text = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    assert!(metrics_text.contains("dyncode-metrics/v1"));

    std::fs::remove_dir_all(&dir).ok();
}
