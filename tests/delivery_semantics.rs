//! The delivery-layer contract, locked end to end:
//!
//! * **Default transparency** — `delivery = reliable` is the legacy
//!   simulator, byte for byte: same artifact JSON as a campaign with no
//!   delivery axis at all (labels, meta, stats, per-round histories).
//! * **Private RNG stream** — delivery coins come from their own stream
//!   (`delivery_rng`), so a model that never erases (`lossy(eps=0)`)
//!   reproduces the reliable run exactly: protocol and adversary
//!   randomness are untouched by the extra draws.
//! * **Record → replay** — a `.dct` trace recorded from a stochastic
//!   scenario replays bit-exactly under radio and lossy models, because
//!   the delivery plan is a pure function of (seed, topology schedule).
//! * **Kernel equivalence** — fast == reference, histories compared
//!   element-wise, across the delivery grid.
//! * **Engine determinism** — a `delivery =` grid campaign is
//!   byte-identical at any thread count.

use dyncode::core::params::{Instance, Params, Placement};
use dyncode::core::runner::{run_spec_kernel, Kernel};
use dyncode::core::spec::ProtocolSpec;
use dyncode::dynet::adversary::Adversary;
use dyncode::dynet::simulator::{DeliverySpec, SimConfig};
use dyncode::engine::{run_campaign, AdversaryKind, Campaign, Engine};

/// An e21-style matrix spec, with an optional `delivery =` line.
fn matrix_campaign(delivery_line: &str) -> Campaign {
    let text = format!(
        "
        id = delivery-lock
        title = delivery byte-identity lock
        protocol = token-forwarding, pipelined-forwarding(4), greedy-forward
        protocol = priority-forward, naive-coded, indexed-broadcast
        protocol = field-broadcast(gf256), centralized
        adversaries = shuffled-path, bottleneck
        {delivery_line}
        n = 10
        k = n
        d = lgn+1
        b = 2d
        seeds = 1, 2
        cap = 100nn
        "
    );
    Campaign::parse(&text).expect("static campaign spec is valid")
}

#[test]
fn explicit_reliable_is_byte_identical_to_the_default() {
    let engine = Engine::new(4);
    let implicit = run_campaign(&engine, &matrix_campaign(""));
    let explicit = run_campaign(&engine, &matrix_campaign("delivery = reliable"));
    assert_eq!(
        implicit.to_json_string(),
        explicit.to_json_string(),
        "`delivery = reliable` must be the legacy simulator, byte for byte"
    );
    // And the elision invariant that makes it so: no label or meta entry
    // mentions the default model.
    for cell in &explicit.cells {
        assert!(!cell.label.contains("delivery"), "{}", cell.label);
        assert!(cell.meta.iter().all(|(k, _)| k != "delivery"));
    }
}

#[test]
fn lossy_eps_zero_reproduces_the_reliable_run_exactly() {
    // The private-stream lock: lossy(eps=0) draws one delivery coin per
    // (receiver, speaker) pair every round and never erases. If those
    // draws shared the protocol or adversary stream, every downstream
    // coin would shift and the runs would diverge.
    let spec = ProtocolSpec::parse("field-broadcast(gf256)").unwrap();
    let inst = Instance::generate(Params::new(12, 12, 6, 12), Placement::OneTokenPerNode, 7);
    for adv_s in [
        "shuffled-path",
        "knowledge-adaptive",
        "edge-markov(0.1,0.3)",
    ] {
        let kind = AdversaryKind::parse(adv_s).unwrap();
        let adv = || kind.build(1) as Box<dyn Adversary>;
        let reliable_cfg = SimConfig::with_max_rounds(60 * 12 * 12).recording();
        let lossy_cfg = reliable_cfg
            .clone()
            .with_delivery(DeliverySpec::Lossy { eps: 0.0 });
        for seed in [1u64, 2, 3] {
            let reliable = run_spec_kernel(
                &spec,
                &inst,
                1,
                &adv,
                &reliable_cfg,
                seed,
                Kernel::Reference,
            );
            let lossy = run_spec_kernel(&spec, &inst, 1, &adv, &lossy_cfg, seed, Kernel::Reference);
            assert!(reliable.completed);
            assert_eq!(reliable, lossy, "{adv_s} seed {seed}");
        }
    }
}

#[test]
fn trace_replay_reproduces_runs_under_delivery_models() {
    use dyncode::prelude::*;
    use dyncode::scenarios::{record_scenario, DctReplay, ScenarioKind};
    use std::io::Cursor;

    let (n, seed) = (12, 5u64);
    let kind = ScenarioKind::parse("churn(0.15,edge-markov(0.1,0.3))").unwrap();
    let params = Params::new(n, n, 5, 10);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 3);

    for delivery in [
        DeliverySpec::Lossy { eps: 0.3 },
        DeliverySpec::Radio { p: 0.5, spont: 0.0 },
        DeliverySpec::Radio {
            p: 0.3,
            spont: 0.05,
        },
    ] {
        // A short cap keeps the recorded trace small; one-shot
        // forwarding may stall under collisions, and the censored run
        // must replay exactly too.
        let cfg = SimConfig::with_max_rounds(40 * n)
            .recording()
            .with_delivery(delivery.clone());
        let mut live_adv = kind.build();
        let mut p1 = TokenForwarding::baseline(&inst);
        let live = run(&mut p1, live_adv.as_mut(), &cfg, seed);

        let mut sink = Cursor::new(Vec::new());
        record_scenario(&kind, n, live.rounds + 5, seed, &mut sink).expect("record");
        let bytes = sink.into_inner();

        let mut replay = DctReplay::new(Cursor::new(bytes)).expect("valid trace");
        let mut p2 = TokenForwarding::baseline(&inst);
        let mut replayed = run(&mut p2, &mut replay, &cfg, seed);
        // The adversary *name* legitimately differs ("trace-replay(…)");
        // every simulated quantity must be bit-identical.
        replayed.adversary = live.adversary.clone();
        assert_eq!(
            live, replayed,
            "{delivery}: .dct replay must reproduce the RunResult exactly"
        );
    }
}

#[test]
fn fast_matches_reference_across_the_delivery_grid() {
    // Every fast-cell family (packed forwarding, GF(2)/GF(256)/dense
    // field cells, the erased fallback) under every delivery model. The
    // flood-staged protocols (greedy, priority, naive-coded) are absent:
    // their debug invariants assume reliable flooding, which degraded
    // channels legitimately violate.
    let specs = [
        "token-forwarding",
        "pipelined-forwarding(4)",
        "indexed-broadcast",
        "field-broadcast(gf2)",
        "field-broadcast(gf256)",
        "field-broadcast(gf257)",
        "field-broadcast(m61)",
        "centralized",
    ];
    let deliveries = [
        DeliverySpec::Lossy { eps: 0.1 },
        DeliverySpec::Lossy { eps: 0.3 },
        DeliverySpec::Radio { p: 0.2, spont: 0.0 },
        DeliverySpec::Radio { p: 0.5, spont: 0.0 },
        DeliverySpec::Radio {
            p: 0.3,
            spont: 0.05,
        },
    ];
    let n = 8;
    let d = 5;
    let inst = Instance::generate(Params::new(n, n, d, 2 * d), Placement::OneTokenPerNode, 42);
    for spec_s in specs {
        let spec = ProtocolSpec::parse(spec_s).expect(spec_s);
        for delivery in &deliveries {
            for (adv_s, seed) in [("shuffled-path", 1u64), ("edge-markov(0.1,0.3)", 2)] {
                let kind = AdversaryKind::parse(adv_s).unwrap();
                let adv = || kind.build(1) as Box<dyn Adversary>;
                let cfg = SimConfig::with_max_rounds(60 * n * n)
                    .recording()
                    .with_delivery(delivery.clone());
                let reference =
                    run_spec_kernel(&spec, &inst, 1, &adv, &cfg, seed, Kernel::Reference);
                let fast = run_spec_kernel(&spec, &inst, 1, &adv, &cfg, seed, Kernel::Fast);
                for (r, f) in reference.history.iter().zip(&fast.history) {
                    assert_eq!(r, f, "{spec_s} × {adv_s} × {delivery} seed {seed}");
                }
                assert_eq!(
                    reference, fast,
                    "{spec_s} × {adv_s} × {delivery} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn delivery_grid_campaign_is_thread_invariant() {
    let text = "
        id = delivery-grid
        title = delivery grid determinism
        protocol = token-forwarding, field-broadcast(gf2)
        adversaries = shuffled-path, bottleneck
        delivery = reliable, lossy(eps=0.2), radio(p=0.4)
        kernel = auto
        n = 8, 12
        k = n
        d = lgn+1
        b = 2d
        seeds = 1, 2, 3
        cap = 40nn
        ";
    let campaign = Campaign::parse(text).expect("static campaign spec is valid");
    assert_eq!(
        campaign.cells().len(),
        2 * 3 * 2 * 2,
        "n × delivery × proto × adv"
    );
    let serial = run_campaign(&Engine::new(1), &campaign);
    let parallel = run_campaign(&Engine::new(8), &campaign);
    assert_eq!(
        serial.to_json_string(),
        parallel.to_json_string(),
        "delivery-grid artifact differs between 1 and 8 threads"
    );
    // Labels and meta carry the delivery spec exactly when non-default.
    let labelled = serial
        .cells
        .iter()
        .filter(|c| c.label.contains("delivery="))
        .count();
    assert_eq!(
        labelled,
        2 * 2 * 2 * 2,
        "two non-default models per (n, proto, adv)"
    );
    for cell in &serial.cells {
        let meta = cell.meta.iter().find(|(k, _)| k == "delivery");
        match meta {
            Some((_, v)) => assert!(cell.label.contains(&format!("delivery={v}"))),
            None => assert!(!cell.label.contains("delivery=")),
        }
    }
}
