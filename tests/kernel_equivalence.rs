//! The kernel equivalence contract: for every **eligible** spec ×
//! adversary × seed, the arena-backed fast backend (`dyncode-kernel`)
//! produces a `RunResult` **bit-identical** to the reference simulator's —
//! rounds, completion, total bits, max message bits, and the per-round
//! history compared element-wise. This is the PR-5 analogue of PR 3's
//! replay == record and PR 4's erased == mono contracts: committed
//! baselines stay valid no matter which backend produced them.
//!
//! The matrix covers the worst-case families (shuffled path/star, the
//! knowledge-*adaptive* adversary — the sharpest probe of view
//! equivalence, since its topology choices branch on the per-round
//! `KnowledgeView`) and the stochastic workloads (edge-Markov, churn),
//! both fully dynamic and T-stable.

use dyncode::core::params::{Instance, Params, Placement};
use dyncode::core::runner::{fast_eligible, resolve_kernel, run_spec_kernel, Kernel};
use dyncode::core::spec::ProtocolSpec;
use dyncode::dynet::adversary::Adversary;
use dyncode::dynet::simulator::{DeliverySpec, SimConfig};
use dyncode::engine::AdversaryKind;
use proptest::prelude::*;

const ELIGIBLE: &[&str] = &[
    "token-forwarding",
    "pipelined-forwarding",
    "pipelined-forwarding(8)",
    "greedy-forward",
    "priority-forward",
    "random-forward",
    "naive-coded",
    "indexed-broadcast",
    "field-broadcast(gf2)",
    "field-broadcast(gf256)",
    "field-broadcast(gf257)",
    "field-broadcast(m61)",
    "centralized",
];

const ADVERSARIES: &[&str] = &[
    "shuffled-path",
    "shuffled-star",
    "knowledge-adaptive",
    "edge-markov(0.1,0.3)",
    "churn(0.15,random-connected)",
];

/// Runs one cell on both backends and asserts bit-identity, histories
/// included.
fn assert_equivalent(spec_s: &str, adv_s: &str, n: usize, t: usize, seed: u64) {
    let spec = ProtocolSpec::parse(spec_s).expect(spec_s);
    let kind = AdversaryKind::parse(adv_s).expect(adv_s);
    // d = ⌈lg n⌉ + 2: distinct d-bit values for k = n tokens at any n here.
    let d = (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize + 2;
    let inst = Instance::generate(Params::new(n, n, d, 2 * d), Placement::OneTokenPerNode, 42);
    // random-forward forwards forever (it never completes), so the full
    // 200n² cap would only replay tens of thousands of silent rounds; a
    // short cap checks the same bit-identity without the wait.
    let cap = if spec_s == "random-forward" {
        40 * n
    } else {
        200 * n * n
    };
    let cfg = SimConfig::with_max_rounds(cap).recording();
    let adv = || kind.build(t) as Box<dyn Adversary>;
    let reference = run_spec_kernel(&spec, &inst, t, &adv, &cfg, seed, Kernel::Reference);
    let fast = run_spec_kernel(&spec, &inst, t, &adv, &cfg, seed, Kernel::Fast);
    assert_eq!(
        reference.history.len(),
        fast.history.len(),
        "{spec_s} × {adv_s} n={n} t={t} seed={seed}: history length"
    );
    for (r, f) in reference.history.iter().zip(&fast.history) {
        assert_eq!(r, f, "{spec_s} × {adv_s} n={n} t={t} seed={seed}");
    }
    assert_eq!(
        reference, fast,
        "{spec_s} × {adv_s} n={n} t={t} seed={seed}"
    );
    // Most cells complete (exercising the dissemination postcondition on
    // both backends); the ones that legitimately hit the cap — e.g. a
    // T = 8 pipelined schedule against a fully dynamic adversary — cover
    // the incomplete-run path, which must agree bit for bit too.
}

#[test]
fn exhaustive_small_matrix() {
    // Every eligible spec against every adversary family, fully dynamic.
    for spec in ELIGIBLE {
        for adv in ADVERSARIES {
            assert_equivalent(spec, adv, 8, 1, 1);
        }
    }
}

/// The quorum family keeps its own equivalence matrix: its `n ≥ 5f+1`
/// regime floor rules out the small sizes the randomized matrix above
/// draws, and — gossiping every round with no protocol randomness — it is
/// the family where delivery-model coins are the *only* stochastic input,
/// so the matrix crosses every adversary with every delivery model.
#[test]
fn quorum_specs_match_across_adversaries_and_delivery_models() {
    let deliveries = ["reliable", "lossy(eps=0.2)", "radio(p=0.4)"];
    for spec_s in [
        "quorum-watermark(f=1)",
        "quorum-watermark(f=2,rounds=12)",
        "quorum-decide(f=2,q=5)",
    ] {
        let spec = ProtocolSpec::parse(spec_s).expect(spec_s);
        assert!(fast_eligible(&spec), "{spec_s}");
        for adv_s in ADVERSARIES {
            for del_s in deliveries {
                let kind = AdversaryKind::parse(adv_s).expect(adv_s);
                let delivery = DeliverySpec::parse(del_s).expect(del_s);
                let n = 12;
                let inst =
                    Instance::generate(Params::new(n, n, 6, 12), Placement::OneTokenPerNode, 42);
                let cfg = SimConfig::with_max_rounds(500 * n * n)
                    .recording()
                    .with_delivery(delivery);
                let adv = || kind.build(1) as Box<dyn Adversary>;
                let reference = run_spec_kernel(&spec, &inst, 1, &adv, &cfg, 7, Kernel::Reference);
                let fast = run_spec_kernel(&spec, &inst, 1, &adv, &cfg, 7, Kernel::Fast);
                assert_eq!(reference, fast, "{spec_s} × {adv_s} × {del_s}");
                assert!(reference.completed, "{spec_s} × {adv_s} × {del_s}");
            }
        }
    }
}

#[test]
fn t_stable_windows_hit_the_csr_reuse_path() {
    // T > 1 freezes the topology inside windows: the fast path serves
    // those rounds from the unchanged CSR snapshot, and pipelined
    // forwarding adopts the cell's T.
    for spec in ["pipelined-forwarding", "field-broadcast(gf2)"] {
        for t in [2usize, 4, 8] {
            assert_equivalent(spec, "shuffled-path", 12, t, 3);
        }
    }
}

#[test]
fn auto_matches_explicit_fast_on_eligible_specs() {
    for spec_s in ELIGIBLE {
        let spec = ProtocolSpec::parse(spec_s).unwrap();
        assert!(fast_eligible(&spec), "{spec_s}");
        assert_eq!(resolve_kernel(&spec, Kernel::Auto), Kernel::Fast);
    }
    // Ineligible specs route Auto to the reference backend: deterministic
    // advice schedules and the charged-rounds patch model fall back, they
    // never panic.
    for spec_s in [
        "field-broadcast(gf2,det=1)",
        "field-broadcast(gf256,det=7)",
        "patch-indexed",
    ] {
        let spec = ProtocolSpec::parse(spec_s).unwrap();
        assert!(!fast_eligible(&spec), "{spec_s}");
        assert_eq!(resolve_kernel(&spec, Kernel::Auto), Kernel::Reference);
    }
}

#[test]
fn det_advice_specs_resolve_to_reference_without_panicking() {
    // The det-variant fallback rule, stated as a unit: Auto on a
    // deterministic advice schedule is a clean Reference resolution.
    let spec = ProtocolSpec::parse("field-broadcast(gf256,det=7)").unwrap();
    assert_eq!(resolve_kernel(&spec, Kernel::Auto), Kernel::Reference);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The randomized matrix: random (spec, adversary, size, T, seed)
    /// cells, histories compared element-wise.
    #[test]
    fn fast_equals_reference(
        spec_i in 0usize..ELIGIBLE.len(),
        adv_i in 0usize..ADVERSARIES.len(),
        n in 4usize..20,
        t in 1usize..6,
        seed in 0u64..1000,
    ) {
        assert_equivalent(ELIGIBLE[spec_i], ADVERSARIES[adv_i], n, t, seed);
    }
}
