//! The protocol registry's two contracts:
//!
//! 1. **Grammar**: `ProtocolSpec::parse ∘ Display = id` on spec *values* —
//!    whatever a spec prints, parsing it back yields an equal spec
//!    (property-tested over randomly generated specs), and malformed
//!    strings are rejected with errors that enumerate the registry.
//! 2. **Erasure**: `run_erased` on a registry-built protocol reproduces
//!    the monomorphized `run`'s `RunResult` **bit for bit** — rounds,
//!    total bits, max message bits, per-round history — across a seeded
//!    cross-protocol matrix covering every simulator family, three
//!    coding fields, deterministic advice mode, and configured variants.

use dyncode::core::params::{Instance, Params, Placement};
use dyncode::core::protocols::{
    Centralized, FieldBroadcast, GreedyConfig, GreedyForward, IndexedBroadcast, NaiveCoded,
    PriorityConfig, PriorityForward, RandomForward, TokenForwarding,
};
use dyncode::core::runner::run_spec;
use dyncode::core::spec::ProtocolSpec;
use dyncode::dynet::adversaries::{RandomConnectedAdversary, ShuffledPathAdversary};
use dyncode::dynet::adversary::Adversary;
use dyncode::dynet::simulator::{run, Protocol, RunResult, SimConfig};
use dyncode::gf::{Gf256, Gf257, Mersenne61};
use dyncode::quorum::{QuorumConfig, QuorumGoal, QuorumProtocol};
use proptest::prelude::*;

proptest! {
    /// Generate spec values across the whole enum (parameters included),
    /// print them, parse them back: the value must survive unchanged —
    /// and so must a second print (canonical forms are fixed points).
    #[test]
    fn parse_display_round_trips(
        which in 0usize..12,
        a in 1usize..64,
        b in 1usize..64,
        seed in any::<u64>(),
        with_param in any::<bool>(),
    ) {
        let spec = match which {
            0 => ProtocolSpec::TokenForwarding,
            1 => ProtocolSpec::PipelinedForwarding { t: with_param.then_some(a) },
            2 => ProtocolSpec::GreedyForward {
                cfg: GreedyConfig { gather_mult: a, broadcast_mult: b },
            },
            3 => ProtocolSpec::PriorityForward {
                cfg: PriorityConfig { warmup_mult: a, broadcast_mult: b },
            },
            4 => ProtocolSpec::RandomForward { rounds: with_param.then_some(a) },
            5 => ProtocolSpec::NaiveCoded,
            6 => ProtocolSpec::IndexedBroadcast,
            7 => {
                let field = match a % 4 {
                    0 => dyncode::core::spec::FieldKind::Gf2,
                    1 => dyncode::core::spec::FieldKind::Gf256,
                    2 => dyncode::core::spec::FieldKind::Gf257,
                    _ => dyncode::core::spec::FieldKind::Mersenne61,
                };
                ProtocolSpec::FieldBroadcast { field, det: with_param.then_some(seed) }
            }
            8 => ProtocolSpec::Centralized,
            9 => ProtocolSpec::PatchIndexed,
            // The quorum families: `rounds` stores the parse-normalized
            // value (8 when elided), so generating the default sometimes
            // exercises the Display collapse.
            10 => ProtocolSpec::QuorumWatermark {
                f: a,
                rounds: if with_param { b } else { 8 },
            },
            _ => ProtocolSpec::QuorumDecide { f: a, q: b },
        };
        let printed = spec.to_string();
        let back = ProtocolSpec::parse(&printed).expect("canonical strings parse");
        prop_assert_eq!(&back, &spec, "{}", printed);
        prop_assert_eq!(back.to_string(), printed, "Display is a fixed point");
    }

    /// Junk never parses: random words that are not registry names are
    /// rejected, and the error names the registry.
    #[test]
    fn unknown_names_are_rejected_with_the_registry(tail in 0u32..1_000_000) {
        let bogus = format!("proto-{tail}");
        let err = ProtocolSpec::parse(&bogus).unwrap_err();
        prop_assert!(err.contains("valid protocols"), "{}", err);
        prop_assert!(err.contains("field-broadcast"), "{}", err);
    }
}

#[test]
fn rejection_cases_cover_every_malformation_class() {
    for bad in [
        "",                               // empty
        "token-forwarding(2)",            // arity on a bare protocol
        "pipelined-forwarding(0)",        // zero T
        "greedy-forward(gather=0)",       // zero multiplier
        "greedy-forward(cycle=2)",        // unknown parameter
        "priority-forward(warmup)",       // missing value
        "random-forward(rounds=x)",       // non-numeric value
        "field-broadcast",                // missing field
        "field-broadcast(gf1024)",        // unknown field
        "field-broadcast(m61,det=)",      // empty seed
        "greedy-forward(gather=1",        // unbalanced paren
        "patch-indexed(T)",               // arity
        "Token-Forwarding",               // case matters
        "quorum-watermark",               // missing required f
        "quorum-watermark()",             // empty parameter list
        "quorum-watermark(f=0)",          // zero fault bound
        "quorum-watermark(rounds=8)",     // rounds without f
        "quorum-watermark(f=1,rounds=0)", // zero goal round
        "quorum-watermark(f=1,q=2)",      // q belongs to quorum-decide
        "quorum-decide(f=1)",             // missing required q
        "quorum-decide(q=3)",             // missing required f
        "quorum-decide(f=1,q=0)",         // zero goal round
        "quorum-decide(f=x,q=1)",         // non-numeric value
    ] {
        assert!(ProtocolSpec::parse(bad).is_err(), "{bad:?} should fail");
    }
}

/// Runs `spec` through the erased registry path and the hand-built
/// monomorphized path under identical `(adversary, config, seed)` and
/// asserts the full `RunResult` (history included) is identical.
fn assert_erased_equals_mono<P, FB>(spec: &str, t: usize, build: FB, cap: usize, seed: u64)
where
    P: Protocol + 'static,
    FB: Fn(&Instance) -> P,
{
    let inst = Instance::generate(
        Params::new(12, 12, 5, 40),
        Placement::OneTokenPerNode,
        900 + seed,
    );
    let cfg = SimConfig::with_max_rounds(cap).recording();
    let spec = ProtocolSpec::parse(spec).expect(spec);
    let adv = || Box::new(RandomConnectedAdversary::new(1)) as Box<dyn Adversary>;

    let erased: RunResult = run_spec(&spec, &inst, t, &adv, &cfg, seed);
    let mut mono = build(&inst);
    let mut a = RandomConnectedAdversary::new(1);
    let direct = run(&mut mono, &mut a, &cfg, seed);
    assert_eq!(erased, direct, "{spec} (seed {seed})");
}

/// The seeded cross-protocol matrix of the acceptance criteria: every
/// simulator protocol family × several seeds, erased == monomorphized.
#[test]
fn erased_dispatch_reproduces_monomorphized_runs_across_the_registry() {
    for seed in [1u64, 7, 23] {
        assert_erased_equals_mono(
            "token-forwarding",
            1,
            TokenForwarding::baseline,
            100_000,
            seed,
        );
        assert_erased_equals_mono(
            "pipelined-forwarding(8)",
            1,
            |i| TokenForwarding::pipelined(i, 8),
            100_000,
            seed,
        );
        assert_erased_equals_mono(
            "greedy-forward(gather=2,bcast=3)",
            1,
            |i| {
                GreedyForward::with_config(
                    i,
                    GreedyConfig {
                        gather_mult: 2,
                        broadcast_mult: 3,
                    },
                )
            },
            500_000,
            seed,
        );
        assert_erased_equals_mono("priority-forward", 1, PriorityForward::new, 500_000, seed);
        // random-forward never self-terminates: both paths must agree on
        // the incomplete result at the cap too.
        assert_erased_equals_mono(
            "random-forward(rounds=24)",
            1,
            |i| RandomForward::new(i, 24),
            36,
            seed,
        );
        assert_erased_equals_mono("naive-coded", 1, NaiveCoded::new, 500_000, seed);
        assert_erased_equals_mono("indexed-broadcast", 1, IndexedBroadcast::new, 100_000, seed);
        assert_erased_equals_mono(
            "field-broadcast(gf256)",
            1,
            FieldBroadcast::<Gf256>::new,
            100_000,
            seed,
        );
        assert_erased_equals_mono(
            "field-broadcast(gf257)",
            1,
            FieldBroadcast::<Gf257>::new,
            100_000,
            seed,
        );
        assert_erased_equals_mono(
            "field-broadcast(m61)",
            1,
            FieldBroadcast::<Mersenne61>::new,
            100_000,
            seed,
        );
        assert_erased_equals_mono(
            "field-broadcast(m61,det=4)",
            1,
            |i| FieldBroadcast::<Mersenne61>::deterministic(i, 4),
            100_000,
            seed,
        );
        assert_erased_equals_mono("centralized", 1, Centralized::new, 100_000, seed);
        // The quorum families terminate by the quorum-threshold
        // predicate, not token completion; the erased and monomorphized
        // paths must still agree on every byte of the result.
        assert_erased_equals_mono(
            "quorum-watermark(f=1)",
            1,
            |i: &Instance| {
                QuorumProtocol::new(
                    i.params.n,
                    i.params.k,
                    QuorumConfig {
                        f: 1,
                        goal: QuorumGoal::Watermark { rounds: 8 },
                    },
                )
            },
            100_000,
            seed,
        );
        assert_erased_equals_mono(
            "quorum-decide(f=2,q=5)",
            1,
            |i: &Instance| {
                QuorumProtocol::new(
                    i.params.n,
                    i.params.k,
                    QuorumConfig {
                        f: 2,
                        goal: QuorumGoal::Decide { q: 5 },
                    },
                )
            },
            100_000,
            seed,
        );
    }
}

/// `field-broadcast(gf2)` has no packed monomorphized twin to diff against
/// (the packed-GF(2) protocol is `indexed-broadcast`), but it must build,
/// run, and complete from its spec string like every other family.
#[test]
fn gf2_field_broadcast_builds_and_completes() {
    let inst = Instance::generate(Params::new(10, 10, 5, 200), Placement::RoundRobin, 8);
    let adv = || Box::new(ShuffledPathAdversary) as Box<dyn Adversary>;
    let spec = ProtocolSpec::parse("field-broadcast(gf2)").unwrap();
    let r = run_spec(
        &spec,
        &inst,
        1,
        &adv,
        &SimConfig::with_max_rounds(100_000),
        3,
    );
    assert!(r.completed);
    let mono = FieldBroadcast::<dyncode::gf::Gf2>::new(&inst);
    let mut a = ShuffledPathAdversary;
    let mut mono = mono;
    let direct = run(&mut mono, &mut a, &SimConfig::with_max_rounds(100_000), 3);
    assert_eq!(r.rounds, direct.rounds);
    assert_eq!(r.total_bits, direct.total_bits);
}
