//! Cross-crate property-based tests: random instances, random parameters,
//! random adversary choices — dissemination must always be exact, and the
//! coding substrate must round-trip.

use dyncode::prelude::*;
use proptest::prelude::*;

/// A strategy for small valid parameter tuples (n, k, d, b).
fn params_strategy() -> impl Strategy<Value = Params> {
    (2usize..14, 4usize..9).prop_flat_map(|(n, d)| {
        let max_k = ((1usize << d) / 2).min(n);
        (Just(n), 1..=max_k.max(1), Just(d), d..3 * d)
            .prop_map(|(n, k, d, b)| Params::new(n, k, d, b.max(4)))
    })
}

fn placement_strategy(n: usize) -> impl Strategy<Value = Placement> {
    prop_oneof![
        Just(Placement::RoundRobin),
        (0..n).prop_map(Placement::AllAtNode),
        (1..=n).prop_map(Placement::Clustered),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn token_forwarding_always_disseminates(
        (params, seed) in params_strategy().prop_flat_map(|p| (Just(p), any::<u64>())),
    ) {
        let inst = Instance::generate(params, Placement::RoundRobin, seed);
        let mut proto = TokenForwarding::baseline(&inst);
        let mut adv = adversaries::ShuffledPathAdversary;
        let r = run(&mut proto, &mut adv, &SimConfig::with_max_rounds(200_000), seed);
        prop_assert!(r.completed);
        prop_assert!(fully_disseminated(&proto));
    }

    #[test]
    fn greedy_forward_always_disseminates(
        (params, placement, seed) in params_strategy().prop_flat_map(|p| {
            (Just(p), placement_strategy(p.n), any::<u64>())
        }),
    ) {
        let inst = Instance::generate(params, placement, seed);
        let mut proto = GreedyForward::new(&inst);
        let mut adv = adversaries::RandomConnectedAdversary::new(1);
        let r = run(&mut proto, &mut adv, &SimConfig::with_max_rounds(500_000), seed);
        prop_assert!(r.completed);
        prop_assert!(fully_disseminated(&proto));
    }

    #[test]
    fn indexed_broadcast_decodes_exactly(
        (params, seed) in params_strategy().prop_flat_map(|p| (Just(p), any::<u64>())),
    ) {
        let inst = Instance::generate(params, Placement::RoundRobin, seed);
        let mut proto = IndexedBroadcast::new(&inst);
        let mut adv = adversaries::RandomConnectedAdversary::new(2);
        let cap = 100 * (params.n + params.k) + 100;
        let r = run(&mut proto, &mut adv, &SimConfig::with_max_rounds(cap), seed);
        prop_assert!(r.completed);
        for u in 0..params.n {
            prop_assert_eq!(
                proto.node(u).decode().expect("done implies decodable"),
                inst.tokens.clone()
            );
        }
    }

    #[test]
    fn every_generated_topology_is_connected(
        n in 2usize..40,
        seed in any::<u64>(),
        extra in 0usize..20,
    ) {
        use rand::{SeedableRng, rngs::StdRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = dyncode_dynet::generators::random_connected(n, extra, &mut rng);
        prop_assert!(g.is_connected());
        prop_assert!(g.num_edges() >= n - 1);
        let t = dyncode_dynet::generators::random_tree(n, &mut rng);
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.num_edges(), n - 1);
    }

    #[test]
    fn patch_decompositions_cover_and_connect(
        n in 2usize..30,
        d in 1usize..5,
        seed in any::<u64>(),
    ) {
        use rand::{SeedableRng, rngs::StdRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = dyncode_dynet::generators::random_connected(n, n / 4, &mut rng);
        let p = dyncode_dynet::mis::patch_decomposition(&g, d, Some(&mut rng));
        prop_assert!(p.max_depth() <= d);
        for u in 0..n {
            prop_assert!(p.patch_of[u] < p.num_patches());
            if let Some(par) = p.parent[u] {
                prop_assert_eq!(p.patch_of[par], p.patch_of[u]);
                prop_assert!(g.has_edge(par, u));
            }
        }
    }
}
