//! Seed-determinism regression tests: the simulator, every protocol, and
//! every adversary must be pure functions of `(Params, Placement, seed)`.
//! Identical inputs must produce identical `RunResult`s — rounds, bit
//! totals, and per-round history — across repeated runs. Perf work later
//! in the roadmap leans on this to do paired before/after comparisons.

use dyncode::prelude::*;
use dyncode_dynet::adversaries::{RandomConnectedAdversary, ShuffledPathAdversary};
use dyncode_dynet::simulator::RunResult;

/// The observable outcome of a run, everything a regression can hang on:
/// rounds, completion, bit totals, and the per-round history rows.
type Fingerprint = (usize, bool, u64, u64, Vec<(usize, u64, usize)>);

fn fingerprint(r: &RunResult) -> Fingerprint {
    (
        r.rounds,
        r.completed,
        r.total_bits,
        r.max_message_bits,
        r.history
            .iter()
            .map(|h| (h.edges, h.bits, h.total_tokens))
            .collect(),
    )
}

/// Runs `make_protocol` against `make_adversary` twice from the same seed
/// and asserts identical outcomes.
fn assert_deterministic<P, A, FP, FA>(make_protocol: FP, make_adversary: FA, seed: u64, cap: usize)
where
    P: Protocol,
    A: Adversary,
    FP: Fn() -> P,
    FA: Fn() -> A,
{
    let cfg = SimConfig::with_max_rounds(cap).recording();
    let run_once = || {
        let mut p = make_protocol();
        let mut a = make_adversary();
        let r = run(&mut p, &mut a, &cfg, seed);
        assert!(r.completed, "dissemination must finish within the cap");
        fingerprint(&r)
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(
        first, second,
        "same (Params, Placement, seed) must replay identically"
    );
}

#[test]
fn token_forwarding_is_seed_deterministic_under_both_adversaries() {
    let params = Params::new(14, 14, 5, 10);
    for seed in [1u64, 99, 0xDEAD_BEEF] {
        let inst = Instance::generate(params, Placement::OneTokenPerNode, seed);
        assert_deterministic(
            || TokenForwarding::baseline(&inst),
            || ShuffledPathAdversary,
            seed,
            50_000,
        );
        assert_deterministic(
            || TokenForwarding::baseline(&inst),
            || RandomConnectedAdversary::new(2),
            seed,
            50_000,
        );
    }
}

#[test]
fn greedy_forward_is_seed_deterministic_under_both_adversaries() {
    let params = Params::new(12, 8, 5, 12);
    for seed in [7u64, 123] {
        let inst = Instance::generate(params, Placement::RoundRobin, seed);
        assert_deterministic(
            || GreedyForward::new(&inst),
            || ShuffledPathAdversary,
            seed,
            200_000,
        );
        assert_deterministic(
            || GreedyForward::new(&inst),
            || RandomConnectedAdversary::new(1),
            seed,
            200_000,
        );
    }
}

#[test]
fn indexed_broadcast_is_seed_deterministic() {
    let params = Params::new(10, 6, 5, 32);
    let inst = Instance::generate(params, Placement::Clustered(3), 5);
    assert_deterministic(
        || IndexedBroadcast::new(&inst),
        || RandomConnectedAdversary::new(2),
        5,
        20_000,
    );
}

#[test]
fn instance_generation_is_seed_deterministic() {
    let params = Params::new(9, 7, 6, 12);
    for placement in [
        Placement::RoundRobin,
        Placement::AllAtNode(3),
        Placement::Clustered(2),
    ] {
        let a = Instance::generate(params, placement, 42);
        let b = Instance::generate(params, placement, 42);
        assert_eq!(a.tokens, b.tokens, "token payloads must replay");
        assert_eq!(a.holders, b.holders, "token placement must replay");
        let c = Instance::generate(params, placement, 43);
        assert!(
            a.tokens != c.tokens || a.holders != c.holders,
            "different seeds should produce different instances"
        );
    }
}

#[test]
fn distinct_seeds_produce_distinct_runs() {
    // Not a tautology: a protocol that ignored its RNG would pass the
    // replay tests trivially. At least one of the seeded quantities must
    // actually move when the seed does.
    let params = Params::new(14, 14, 5, 10);
    let inst = Instance::generate(params, Placement::OneTokenPerNode, 1);
    let cfg = SimConfig::with_max_rounds(50_000).recording();
    let mut outcomes = std::collections::HashSet::new();
    for seed in 0..6u64 {
        let mut p = TokenForwarding::baseline(&inst);
        let mut a = RandomConnectedAdversary::new(2);
        let r = run(&mut p, &mut a, &cfg, seed);
        assert!(r.completed);
        outcomes.insert(fingerprint(&r));
    }
    assert!(outcomes.len() > 1, "seed must influence the run");
}
