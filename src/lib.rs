//! # dyncode
//!
//! A faithful, executable reproduction of **Haeupler & Karger, "Faster
//! Information Dissemination in Dynamic Networks via Network Coding"
//! (PODC 2011)**: the Kuhn–Lynch–Oshman dynamic network model, random
//! linear network coding over honest b-bit messages, every algorithm the
//! paper states (and the token-forwarding baselines it beats), and an
//! experiment harness regenerating each theorem as a measured table.
//!
//! This crate is the umbrella facade; the work lives in four library
//! crates it re-exports:
//!
//! * [`gf`] (`dyncode-gf`) — finite fields GF(2)/GF(2⁸)/GF(p≤2⁶¹−1),
//!   packed GF(2) linear algebra, incremental subspace bases.
//! * [`dynet`] (`dyncode-dynet`) — the dynamic network model: adversaries,
//!   the round-synchronous simulator with per-message bit accounting,
//!   Luby-MIS patch decompositions.
//! * [`rlnc`] (`dyncode-rlnc`) — coded packets, coding node state, the
//!   Definition 5.1 sensing instrumentation, and the Section 6
//!   derandomization machinery (omniscient adversary included).
//! * [`engine`] (`dyncode-engine`) — the parallel campaign engine:
//!   declarative sweep specs, a work-stealing executor with per-cell
//!   panic containment, `BENCH_<id>.json` artifacts and the `compare`
//!   regression gate.
//! * [`core`] (`dyncode-core`) — the protocols: token forwarding
//!   (Theorem 2.1), indexed broadcast (Lemma 5.3), `greedy-forward`
//!   (Theorem 7.3), `priority-forward` (Theorem 7.5), T-stable patch
//!   algorithms (Section 8), centralized coding (Corollary 2.6), plus
//!   theory-bound formulas and run helpers.
//! * [`scenarios`] (`dyncode-scenarios`) — the workload subsystem:
//!   stochastic evolving-graph adversaries (edge-Markov, random
//!   waypoint, churn) and the streaming `.dct` binary trace format for
//!   exact record/replay.
//! * [`kernel`] (`dyncode-kernel`) — the arena-backed fast-path
//!   execution backend: CSR topology snapshots rebuilt from edge
//!   deltas, word-packed GF(2) elimination cells, and the
//!   `Kernel::{Reference, Fast, Auto}` selection enum, bit-identical to
//!   the reference simulator on every eligible spec.
//! * [`quorum`] (`dyncode-quorum`) — latest-message-per-peer consensus:
//!   per-node `max_rounds` tables merged by max on delivery, monotone
//!   f+1 / 4f+1 watermarks, and the `quorum-watermark` /
//!   `quorum-decide` registry families with quorum-threshold
//!   termination.
//!
//! See `examples/quickstart.rs` for a first run and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dyncode_core as core;
pub use dyncode_dynet as dynet;
pub use dyncode_engine as engine;
pub use dyncode_gf as gf;
pub use dyncode_kernel as kernel;
pub use dyncode_quorum as quorum;
pub use dyncode_rlnc as rlnc;
pub use dyncode_scenarios as scenarios;

/// Commonly used items in one import.
pub mod prelude {
    pub use dyncode_core::params::{Instance, Params, Placement};
    pub use dyncode_core::protocols::{
        Centralized, GreedyForward, IndexedBroadcast, NaiveCoded, PriorityForward, RandomForward,
        TokenForwarding,
    };
    pub use dyncode_core::runner::{
        fully_disseminated, run_one, run_spec_kernel, summarize, sweep_seeds, Kernel,
    };
    pub use dyncode_core::theory;
    pub use dyncode_dynet::adversaries;
    pub use dyncode_dynet::adversary::{Adversary, KnowledgeView, TStable};
    pub use dyncode_dynet::simulator::{run, Protocol, RunResult, SimConfig};
    pub use dyncode_engine::{run_campaign, Campaign, Engine};
    pub use dyncode_gf::{Field, Gf2Vec};
}
